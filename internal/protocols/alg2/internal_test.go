package alg2

import (
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sig"
)

// newTestCore builds a core for member `me` of a 2t+1 group.
func newTestCore(t *testing.T, tt int, me ident.ProcID, v ident.Value, scheme sig.Scheme) *Core {
	t.Helper()
	signer, err := scheme.Signer(me)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCore(ident.Range(2*tt+1), tt, me, v, signer, scheme)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// chainOver signs v through the given group members in order.
func chainOver(t *testing.T, scheme sig.Scheme, v ident.Value, signers ...ident.ProcID) sig.SignedValue {
	t.Helper()
	sv := sig.SignedValue{Value: v}
	for _, id := range signers {
		s, err := scheme.Signer(id)
		if err != nil {
			t.Fatal(err)
		}
		sv = sv.CoSign(s)
	}
	return sv
}

func TestClassifyIncreasing(t *testing.T) {
	const tt = 3
	scheme := sig.NewHMAC(2*tt+1, 5)
	c := newTestCore(t, tt, 5, ident.V1, scheme)
	c.committed, c.hasCommitted = ident.V1, true

	// Increasing for index 5: signers 0 < 2 < 4, all < 5.
	inc := chainOver(t, scheme, ident.V1, 0, 2, 4)
	c.classify(inc.Marshal())
	if !c.hasBest || len(c.best.Chain) != 3 {
		t.Fatal("increasing message not adopted")
	}

	// Non-increasing order: rejected as m-candidate.
	c2 := newTestCore(t, tt, 5, ident.V1, scheme)
	c2.committed, c2.hasCommitted = ident.V1, true
	c2.classify(chainOver(t, scheme, ident.V1, 2, 0).Marshal())
	if c2.hasBest {
		t.Fatal("non-increasing chain adopted")
	}

	// Signer ≥ my index: rejected.
	c3 := newTestCore(t, tt, 5, ident.V1, scheme)
	c3.committed, c3.hasCommitted = ident.V1, true
	c3.classify(chainOver(t, scheme, ident.V1, 0, 6).Marshal())
	if c3.hasBest {
		t.Fatal("high-label signer accepted")
	}

	// Wrong value: rejected entirely.
	c4 := newTestCore(t, tt, 5, ident.V1, scheme)
	c4.committed, c4.hasCommitted = ident.V1, true
	c4.classify(chainOver(t, scheme, ident.V0, 0, 2).Marshal())
	if c4.hasBest || c4.hasProof {
		t.Fatal("wrong-value chain accepted")
	}
}

func TestClassifyProofGrade(t *testing.T) {
	const tt = 2
	scheme := sig.NewHMAC(2*tt+1, 5)
	c := newTestCore(t, tt, 1, ident.V1, scheme)
	c.committed, c.hasCommitted = ident.V1, true

	// t other-signers suffice for proof grade, even when not increasing
	// for us (labels above ours).
	proof := chainOver(t, scheme, ident.V1, 3, 4)
	c.classify(proof.Marshal())
	if !c.hasProof {
		t.Fatal("proof-grade message not held")
	}
	if c.hasBest {
		t.Fatal("non-increasing message adopted as m-candidate")
	}

	// Our own signature does not count toward the t others.
	c2 := newTestCore(t, tt, 1, ident.V1, scheme)
	c2.committed, c2.hasCommitted = ident.V1, true
	own := chainOver(t, scheme, ident.V1, 1, 3) // one other + self
	c2.classify(own.Marshal())
	if c2.hasProof {
		t.Fatal("own signature counted toward proof threshold")
	}
}

func TestClassifyBestPrefersLongerChains(t *testing.T) {
	const tt = 3
	scheme := sig.NewHMAC(2*tt+1, 5)
	c := newTestCore(t, tt, 6, ident.V1, scheme)
	c.committed, c.hasCommitted = ident.V1, true

	c.classify(chainOver(t, scheme, ident.V1, 0).Marshal())
	c.classify(chainOver(t, scheme, ident.V1, 1, 2, 3).Marshal())
	c.classify(chainOver(t, scheme, ident.V1, 4, 5).Marshal())
	if len(c.best.Chain) != 3 {
		t.Fatalf("best chain %d links, want 3", len(c.best.Chain))
	}
}

func TestClassifyRejectsOutsiderAndDuplicates(t *testing.T) {
	const tt = 2
	n := 2*tt + 1
	wide := sig.NewHMAC(n+2, 5)                  // scheme with extra identities
	signerOut, _ := wide.Signer(ident.ProcID(n)) // not in group
	me := ident.ProcID(4)
	meSigner, _ := wide.Signer(me)
	c, err := NewCore(ident.Range(n), tt, me, ident.V1, meSigner, wide)
	if err != nil {
		t.Fatal(err)
	}
	c.committed, c.hasCommitted = ident.V1, true

	sv := sig.SignedValue{Value: ident.V1}
	sv = sv.CoSign(signerOut)
	c.classify(sv.Marshal())
	if c.hasBest || c.hasProof {
		t.Fatal("outsider signature accepted")
	}

	s0, _ := wide.Signer(0)
	dup := sig.SignedValue{Value: ident.V1}
	dup = dup.CoSign(s0).CoSign(s0)
	c.classify(dup.Marshal())
	if c.hasBest {
		t.Fatal("duplicate-signer chain accepted")
	}
}
