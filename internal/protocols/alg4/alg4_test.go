package alg4_test

import (
	"bytes"
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg4"
	"byzex/internal/sig"
)

func runGrid(t *testing.T, n, tt int, adv adversary.Adversary, faulty ident.Set) *core.Result {
	t.Helper()
	res, err := core.Run(context.Background(), core.Config{
		Protocol: alg4.Protocol{}, N: n, T: tt, Value: ident.V0,
		Adversary: adv, FaultyOverride: faulty, Seed: 44,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCheckRequiresSquare(t *testing.T) {
	p := alg4.Protocol{}
	if err := p.Check(10, 1); err == nil {
		t.Fatal("non-square accepted")
	}
	if err := p.Check(16, 2); err != nil {
		t.Fatalf("16 rejected: %v", err)
	}
	if err := p.Check(16, 16); err == nil {
		t.Fatal("t=n accepted")
	}
}

func TestFaultFreeFullExchange(t *testing.T) {
	for _, m := range []int{2, 3, 4, 6} {
		n := m * m
		res := runGrid(t, n, 0, nil, nil)
		for i, nd := range res.Nodes {
			out := nd.(alg4.Exchanger).Output()
			if len(out) != n {
				t.Fatalf("m=%d: node %d collected %d/%d values", m, i, len(out), n)
			}
			for q, sb := range out {
				if !bytes.Equal(sb.Body, alg4.OwnValue(q)) {
					t.Fatalf("m=%d: node %d has wrong value for %v", m, i, q)
				}
			}
		}
		if got, bound := res.Sim.Report.MessagesCorrect, core.Alg4MsgUpperBound(m); got > bound {
			t.Fatalf("m=%d: %d msgs > %d", m, got, bound)
		}
	}
}

func TestMessageCountExact(t *testing.T) {
	// Fault-free: every processor sends m-1 messages in each of 3 phases.
	for _, m := range []int{3, 4, 5} {
		n := m * m
		res := runGrid(t, n, 0, nil, nil)
		want := 3 * (m - 1) * n
		if got := res.Sim.Report.MessagesCorrect; got != want {
			t.Fatalf("m=%d: %d msgs, want %d", m, got, want)
		}
	}
}

func TestLemma2GuaranteeUnderFaults(t *testing.T) {
	// Corrupt t processors concentrated in few rows; processors in rows
	// with < m/2 faults must still mutually exchange.
	m := 4
	n := m * m
	tt := 3
	faulty := ident.NewSet(0, 1, 5) // row 0 has 2 faults (≥ m/2), row 1 has 1
	res := runGrid(t, n, tt, adversary.Silent{}, faulty)

	var pSet []ident.ProcID
	for i := 0; i < n; i++ {
		id := ident.ProcID(i)
		if faulty.Has(id) {
			continue
		}
		row := i / m
		rowFaults := 0
		for c := 0; c < m; c++ {
			if faulty.Has(ident.ProcID(row*m + c)) {
				rowFaults++
			}
		}
		if 2*rowFaults < m {
			pSet = append(pSet, id)
		}
	}
	if len(pSet) < n-2*tt {
		t.Fatalf("candidate P too small: %d < %d", len(pSet), n-2*tt)
	}
	for _, p := range pSet {
		out := res.Nodes[p].(alg4.Exchanger).Output()
		for _, q := range pSet {
			if _, ok := out[q]; !ok {
				t.Fatalf("processor %v missing value of %v", p, q)
			}
		}
	}
}

func TestGarbageToleration(t *testing.T) {
	// Garbage from faulty processors must not corrupt collected values.
	m := 4
	n := m * m
	res := runGrid(t, n, 2, adversary.Garbage{PerPhase: 8}, nil)
	for i, nd := range res.Nodes {
		if res.Faulty.Has(ident.ProcID(i)) {
			continue
		}
		out := nd.(alg4.Exchanger).Output()
		for q, sb := range out {
			if res.Faulty.Has(q) {
				continue
			}
			if !bytes.Equal(sb.Body, alg4.OwnValue(q)) {
				t.Fatalf("node %d holds forged value for %v", i, q)
			}
		}
	}
}

func TestGroupValidation(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	s0, _ := scheme.Signer(0)
	if _, err := alg4.NewGroup(ident.Range(3), 0, nil, s0, scheme); err == nil {
		t.Fatal("non-square group accepted")
	}
	if _, err := alg4.NewGroup(ident.Range(4), 9, nil, s0, scheme); err == nil {
		t.Fatal("outsider accepted")
	}
	if _, err := alg4.NewGroup([]ident.ProcID{0, 0, 1, 2}, 0, nil, s0, scheme); err == nil {
		t.Fatal("duplicate accepted")
	}
}
