package alg4

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// RelayProtocol is the paper's §5 "obvious" two-phase solution to the
// mutual exchange problem, which Algorithm 4 undercuts for t ≥ √N:
//
//	Select t+1 relay processors. Phase 1: every processor signs and sends
//	its value to every relay. Phase 2: each relay combines the incoming
//	messages with its own value into one long message and sends it to
//	every non-relay.
//
// It sends at most (N−1)(t+1) + (t+1)(N−t−1) = Θ(Nt) messages but gives a
// stronger guarantee than Algorithm 4: *every* correct processor receives
// the value of every correct processor (at least one relay is correct).
// The ablation benchmark BenchmarkAblationExchange locates the crossover
// between the two, reproducing the paper's Θ(Nt) vs O(N^1.5) comparison.
type RelayProtocol struct{}

var _ protocol.Protocol = RelayProtocol{}

// Name implements protocol.Protocol.
func (RelayProtocol) Name() string { return "relay-exchange" }

// Check implements protocol.Protocol.
func (RelayProtocol) Check(n, t int) error {
	if n < 2 || t < 0 || t+1 > n {
		return fmt.Errorf("%w: relay exchange needs t+1 ≤ n (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (RelayProtocol) Phases(int, int) int { return 2 }

// RelayMsgUpperBound is the §5 count (N−1)(t+1) + (t+1)(N−t−1).
func RelayMsgUpperBound(n, t int) int { return (n-1)*(t+1) + (t+1)*(n-t-1) }

// NewNode implements protocol.Protocol.
func (RelayProtocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &relayNode{
		cfg:       cfg,
		collected: make(map[ident.ProcID]sig.SignedBytes),
	}, nil
}

type relayNode struct {
	cfg       protocol.NodeConfig
	collected map[ident.ProcID]sig.SignedBytes
	// m1 buffers phase 1 receipts for the relay's phase 2 fan-out.
	m1 []sig.SignedBytes
}

var _ sim.Node = (*relayNode)(nil)
var _ Exchanger = (*relayNode)(nil)

// isRelay reports whether id is one of the t+1 relay processors.
func (r *relayNode) isRelay(id ident.ProcID) bool { return int(id) <= r.cfg.T }

// accept validates a single signed value entry.
func (r *relayNode) accept(sb sig.SignedBytes) bool {
	if len(sb.Chain) != 1 {
		return false
	}
	if int(sb.Chain[0].Signer) < 0 || int(sb.Chain[0].Signer) >= r.cfg.N {
		return false
	}
	return sb.Verify(r.cfg.Verifier) == nil
}

func (r *relayNode) record(sb sig.SignedBytes) {
	signer := sb.Chain[0].Signer
	if _, ok := r.collected[signer]; !ok {
		r.collected[signer] = sb
	}
}

func (r *relayNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	switch ctx.Phase() {
	case 1:
		own := sig.NewSignedBytes(r.cfg.Signer, OwnValue(r.cfg.ID))
		r.record(own)
		if r.isRelay(r.cfg.ID) {
			r.m1 = append(r.m1, own)
		}
		w := wire.NewWriter(64)
		w.Byte(tagValue)
		own.Encode(w)
		payload := w.Bytes()
		for i := 0; i <= r.cfg.T; i++ {
			relay := ident.ProcID(i)
			if relay == r.cfg.ID {
				continue
			}
			if err := protocol.Send(ctx, relay, payload, own.Chain); err != nil {
				return err
			}
		}
	case 2:
		if !r.isRelay(r.cfg.ID) {
			return nil
		}
		for _, env := range inbox {
			if len(env.Payload) == 0 || env.Payload[0] != tagValue {
				continue
			}
			rd := wire.NewReader(env.Payload[1:])
			sb := sig.DecodeSignedBytes(rd)
			if rd.Finish() != nil || !r.accept(sb) || sb.Chain[0].Signer != env.From {
				continue
			}
			r.m1 = append(r.m1, sb)
			r.record(sb)
		}
		payload := encodeList(r.m1)
		chains := chainsOf(r.m1)
		for i := r.cfg.T + 1; i < r.cfg.N; i++ {
			if err := protocol.Send(ctx, ident.ProcID(i), payload, chains...); err != nil {
				return err
			}
		}
	default:
		// Final delivery: non-relays absorb the combined reports.
		for _, env := range inbox {
			if !r.isRelay(env.From) || len(env.Payload) == 0 || env.Payload[0] != tagList {
				continue
			}
			rd := wire.NewReader(env.Payload[1:])
			cnt := rd.Len()
			if rd.Err() != nil {
				continue
			}
			for i := 0; i < cnt; i++ {
				sb := sig.DecodeSignedBytes(rd)
				if rd.Err() != nil {
					break
				}
				if r.accept(sb) {
					r.record(sb)
				}
			}
		}
	}
	return nil
}

func (r *relayNode) Decide() (ident.Value, bool) { return ident.V0, true }

// Output implements Exchanger.
func (r *relayNode) Output() map[ident.ProcID]sig.SignedBytes {
	out := make(map[ident.ProcID]sig.SignedBytes, len(r.collected))
	for id, sb := range r.collected {
		out[id] = sb
	}
	return out
}
