package alg4_test

import (
	"bytes"
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg4"
)

func runRelay(t *testing.T, n, tt int, adv adversary.Adversary, faulty ident.Set) *core.Result {
	t.Helper()
	res, err := core.Run(context.Background(), core.Config{
		Protocol: alg4.RelayProtocol{}, N: n, T: tt, Value: ident.V0,
		Adversary: adv, FaultyOverride: faulty, Seed: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRelayFullExchangeFaultFree(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{5, 1}, {10, 2}, {20, 4}} {
		res := runRelay(t, tc.n, tc.t, nil, nil)
		for i, nd := range res.Nodes {
			out := nd.(alg4.Exchanger).Output()
			if len(out) != tc.n {
				t.Fatalf("n=%d: node %d collected %d values", tc.n, i, len(out))
			}
		}
		if got, bound := res.Sim.Report.MessagesCorrect, alg4.RelayMsgUpperBound(tc.n, tc.t); got > bound {
			t.Fatalf("n=%d t=%d: %d msgs > bound %d", tc.n, tc.t, got, bound)
		}
	}
}

func TestRelayStrongerGuaranteeUnderFaults(t *testing.T) {
	// Unlike Algorithm 4, ALL correct processors mutually exchange as long
	// as at least one relay is correct (t faults among t+1 relays).
	n, tt := 12, 3
	faulty := ident.NewSet(0, 1, 2) // three of the four relays
	res := runRelay(t, n, tt, adversary.Silent{}, faulty)
	for i, nd := range res.Nodes {
		id := ident.ProcID(i)
		if res.Faulty.Has(id) {
			continue
		}
		out := nd.(alg4.Exchanger).Output()
		for q := 0; q < n; q++ {
			qid := ident.ProcID(q)
			if res.Faulty.Has(qid) {
				continue
			}
			sb, ok := out[qid]
			if !ok {
				t.Fatalf("node %d missing value of %v", i, qid)
			}
			if !bytes.Equal(sb.Body, alg4.OwnValue(qid)) {
				t.Fatalf("node %d holds wrong value for %v", i, qid)
			}
		}
	}
}

func TestRelayVsGridCrossover(t *testing.T) {
	// The paper's §5/§6 comparison: relay costs Θ(Nt), the grid O(N^1.5);
	// the grid wins once t ≳ √N.
	for _, tc := range []struct {
		m, t     int
		gridWins bool
	}{
		{8, 1, false}, // N=64, t=1: relay (≈2N) beats grid (≈3N^1.5)
		{8, 16, true}, // N=64, t=16 ≥ 2√N: grid wins
		{16, 2, false},
		{16, 40, true},
	} {
		n := tc.m * tc.m
		grid := core.Alg4MsgUpperBound(tc.m)
		relay := alg4.RelayMsgUpperBound(n, tc.t)
		if (grid < relay) != tc.gridWins {
			t.Errorf("m=%d t=%d: grid=%d relay=%d, expected gridWins=%v",
				tc.m, tc.t, grid, relay, tc.gridWins)
		}
	}
}

func TestRelayCheck(t *testing.T) {
	p := alg4.RelayProtocol{}
	if err := p.Check(3, 3); err == nil {
		t.Fatal("t+1 > n accepted")
	}
	if err := p.Check(1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if err := p.Check(10, 3); err != nil {
		t.Fatal(err)
	}
}
