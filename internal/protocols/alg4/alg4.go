// Package alg4 implements Algorithm 4 of the paper (Theorem 6): a
// three-phase mutual exchange primitive for N = m² processors that sends at
// most 3(m-1)m² = O(N^1.5) messages and guarantees that a set P of at least
// N - 2t correct processors (those whose grid row contains fewer than m/2
// faulty processors) mutually receive each other's signed values.
//
//	Phase 1:  p(i,j) signs its value and sends it along its row.
//	Phase 2:  p(i,j) forwards the collected row values down its column.
//	Phase 3:  p(i,j) forwards the collected column reports along its row.
//
// The Group type is embeddable: Algorithm 5 runs one instance per block
// among its α active processors to exchange the F(p, x) lists.
package alg4

import (
	"fmt"

	"byzex/internal/grid"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// payload tags distinguish the three message shapes.
const (
	tagValue byte = 0xA1 // phase 1: one signed value
	tagList  byte = 0xA2 // phases 2 and 3: a list of signed values
)

// Group is one participant's state for a single Algorithm 4 exchange.
type Group struct {
	members []ident.ProcID
	indexOf map[ident.ProcID]int
	g       grid.Grid
	me      int

	signer   sig.Signer
	verifier sig.Verifier

	value []byte

	// collected maps member index -> that member's signed value, as
	// verified from any of the three phases.
	collected map[int]sig.SignedBytes
	// m1 keeps phase 1 receipts (own row) for the phase 2 forward; m2
	// keeps phase 2 receipts (own column) for the phase 3 forward.
	m1 []sig.SignedBytes
	m2 []sig.SignedBytes
}

// NewGroup builds the exchange state for member me of the given group
// (whose size must be a perfect square). value is the byte string this
// member contributes.
func NewGroup(members []ident.ProcID, me ident.ProcID, value []byte, signer sig.Signer, verifier sig.Verifier) (*Group, error) {
	g, err := grid.New(len(members))
	if err != nil {
		return nil, err
	}
	idx := make(map[ident.ProcID]int, len(members))
	for i, id := range members {
		if _, dup := idx[id]; dup {
			return nil, fmt.Errorf("%w: duplicate member %v", protocol.ErrBadParams, id)
		}
		idx[id] = i
	}
	mi, ok := idx[me]
	if !ok {
		return nil, fmt.Errorf("%w: %v not in group", protocol.ErrBadParams, me)
	}
	return &Group{
		members:   append([]ident.ProcID(nil), members...),
		indexOf:   idx,
		g:         g,
		me:        mi,
		signer:    signer,
		verifier:  verifier,
		value:     append([]byte(nil), value...),
		collected: make(map[int]sig.SignedBytes),
	}, nil
}

// Phases is the number of sending phases of one exchange (3); outputs are
// complete one delivery step later (relative step 3).
const Phases = 3

// record stores a verified signed value under its signer's index.
func (gr *Group) record(sb sig.SignedBytes) {
	idx := gr.indexOf[sb.Chain[0].Signer]
	if _, ok := gr.collected[idx]; !ok {
		gr.collected[idx] = sb
	}
}

// acceptEntry validates one signed-value entry: exactly one chain link, the
// signer a group member, the signature valid.
func (gr *Group) acceptEntry(sb sig.SignedBytes) bool {
	if len(sb.Chain) != 1 {
		return false
	}
	if _, ok := gr.indexOf[sb.Chain[0].Signer]; !ok {
		return false
	}
	return sb.Verify(gr.verifier) == nil
}

// parse decodes a payload into its verified entries (nil for foreign or
// malformed payloads).
func (gr *Group) parse(payload []byte) []sig.SignedBytes {
	if len(payload) == 0 {
		return nil
	}
	r := wire.NewReader(payload[1:])
	switch payload[0] {
	case tagValue:
		sb := sig.DecodeSignedBytes(r)
		if r.Finish() != nil || !gr.acceptEntry(sb) {
			return nil
		}
		return []sig.SignedBytes{sb}
	case tagList:
		n := r.Len()
		if r.Err() != nil {
			return nil
		}
		out := make([]sig.SignedBytes, 0, n)
		for i := 0; i < n; i++ {
			sb := sig.DecodeSignedBytes(r)
			if r.Err() != nil {
				return nil
			}
			if gr.acceptEntry(sb) {
				out = append(out, sb)
			}
		}
		if r.Finish() != nil {
			return nil
		}
		return out
	default:
		return nil
	}
}

func encodeList(entries []sig.SignedBytes) []byte {
	w := wire.NewWriter(64 * (len(entries) + 1))
	w.Byte(tagList)
	w.Uint(uint64(len(entries)))
	for _, e := range entries {
		e.Encode(w)
	}
	return w.Bytes()
}

func chainsOf(entries []sig.SignedBytes) []sig.Chain {
	out := make([]sig.Chain, len(entries))
	for i, e := range entries {
		out[i] = e.Chain
	}
	return out
}

// sendTo sends payload to the group members at the given grid indices.
func (gr *Group) sendTo(ctx *sim.Context, indices []int, payload []byte, chains ...sig.Chain) error {
	ids := make([]ident.ProcID, len(indices))
	for i, idx := range indices {
		ids[i] = gr.members[idx]
	}
	return protocol.SendToAll(ctx, ids, payload, chains...)
}

// Step advances the exchange. rel is the relative step: 0, 1, 2 send the
// three phases; 3 is the final collection step (no sends). inbox must hold
// the messages delivered at this step; foreign messages are ignored, so
// embedders may pass a mixed inbox.
func (gr *Group) Step(ctx *sim.Context, inbox []sim.Envelope, rel int) error {
	// Collect whatever this step delivered.
	for _, env := range inbox {
		idx, ok := gr.indexOf[env.From]
		if !ok {
			continue
		}
		entries := gr.parse(env.Payload)
		if entries == nil {
			continue
		}
		switch rel {
		case 1: // phase 1 receipts: a single value from a row mate
			if gr.g.SameRow(idx, gr.me) && len(entries) == 1 && entries[0].Chain[0].Signer == env.From {
				gr.m1 = append(gr.m1, entries[0])
				gr.record(entries[0])
			}
		case 2: // phase 2 receipts: a row report from a column mate
			if gr.g.SameCol(idx, gr.me) {
				gr.m2 = append(gr.m2, entries...)
				for _, e := range entries {
					gr.record(e)
				}
			}
		case 3: // phase 3 receipts: column reports from row mates
			if gr.g.SameRow(idx, gr.me) {
				for _, e := range entries {
					gr.record(e)
				}
			}
		}
	}

	switch rel {
	case 0:
		own := sig.NewSignedBytes(gr.signer, gr.value)
		gr.record(own)
		gr.m1 = append(gr.m1, own)
		w := wire.NewWriter(64 + len(gr.value))
		w.Byte(tagValue)
		own.Encode(w)
		return gr.sendTo(ctx, gr.g.RowMates(gr.me), w.Bytes(), own.Chain)
	case 1:
		payload := encodeList(gr.m1)
		return gr.sendTo(ctx, gr.g.ColMates(gr.me), payload, chainsOf(gr.m1)...)
	case 2:
		payload := encodeList(gr.m2)
		return gr.sendTo(ctx, gr.g.RowMates(gr.me), payload, chainsOf(gr.m2)...)
	}
	return nil
}

// Output returns the collected values: member identity -> signed value.
// Complete after relative step 3.
func (gr *Group) Output() map[ident.ProcID]sig.SignedBytes {
	out := make(map[ident.ProcID]sig.SignedBytes, len(gr.collected))
	for idx, sb := range gr.collected {
		out[gr.members[idx]] = sb
	}
	return out
}

// ---------------------------------------------------------------------------
// Standalone protocol wrapper: every processor contributes the byte
// encoding of its own identity as its value; tests inspect Output via the
// Exchanger interface. (Algorithm 4 is an exchange primitive, not Byzantine
// Agreement; Decide trivially returns 0.)

// Protocol runs one Algorithm 4 exchange over the whole system.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "alg4" }

// Check implements protocol.Protocol: n must be a perfect square.
func (Protocol) Check(n, t int) error {
	if _, err := grid.New(n); err != nil {
		return err
	}
	if t < 0 || t >= n {
		return fmt.Errorf("%w: t=%d out of range", protocol.ErrBadParams, t)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (Protocol) Phases(int, int) int { return Phases }

// NewNode implements protocol.Protocol.
func (Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	value := OwnValue(cfg.ID)
	gr, err := NewGroup(ident.Range(cfg.N), cfg.ID, value, cfg.Signer, cfg.Verifier)
	if err != nil {
		return nil, err
	}
	return &node{gr: gr}, nil
}

// OwnValue is the standalone protocol's per-processor input: the canonical
// encoding of the processor's identity.
func OwnValue(id ident.ProcID) []byte {
	w := wire.NewWriter(8)
	w.Proc(id)
	return w.Bytes()
}

type node struct {
	gr *Group
}

var _ sim.Node = (*node)(nil)

func (n *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	return n.gr.Step(ctx, inbox, ctx.Phase()-1)
}

func (n *node) Decide() (ident.Value, bool) { return ident.V0, true }

// Output exposes the exchange result for tests and callers.
func (n *node) Output() map[ident.ProcID]sig.SignedBytes { return n.gr.Output() }

// Exchanger is implemented by nodes exposing an Algorithm 4 output.
type Exchanger interface {
	Output() map[ident.ProcID]sig.SignedBytes
}

var _ Exchanger = (*node)(nil)
