package phaseking_test

import (
	"context"
	"fmt"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/phaseking"
	"byzex/internal/sig"
)

func cfg(n, tt int, v ident.Value, adv adversary.Adversary) core.Config {
	return core.Config{
		Protocol: phaseking.Protocol{}, N: n, T: tt, Value: v,
		Scheme: sig.NewPlain(n), Adversary: adv, Seed: 19,
	}
}

func TestCheck(t *testing.T) {
	p := phaseking.Protocol{}
	if err := p.Check(8, 2); err == nil {
		t.Fatal("n = 4t accepted")
	}
	if err := p.Check(9, 2); err != nil {
		t.Fatalf("n=9 t=2 rejected: %v", err)
	}
	if err := p.Check(1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestFaultFree(t *testing.T) {
	for _, tc := range []struct{ n, t int }{
		{5, 1}, {9, 2}, {13, 3}, {21, 5}, {2, 0},
	} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			res, got, err := core.RunAndCheck(context.Background(), cfg(tc.n, tc.t, v, nil))
			if err != nil {
				t.Fatalf("n=%d t=%d v=%v: %v", tc.n, tc.t, v, err)
			}
			if got != v {
				t.Fatalf("n=%d: decided %v want %v", tc.n, got, v)
			}
			if msgs, bound := res.Sim.Report.MessagesCorrect, phaseking.MsgUpperBound(tc.n, tc.t); msgs > bound {
				t.Fatalf("n=%d t=%d: %d msgs > bound %d", tc.n, tc.t, msgs, bound)
			}
		}
	}
}

func TestMultiValued(t *testing.T) {
	for _, v := range []ident.Value{3, 17, -5} {
		_, got, err := core.RunAndCheck(context.Background(), cfg(9, 2, v, nil))
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("decided %v want %v", got, v)
		}
	}
}

func TestAdversarySuite(t *testing.T) {
	advs := []adversary.Adversary{
		adversary.Silent{},
		adversary.Crash{CrashAfter: 3},
		adversary.Garbage{PerPhase: 5},
	}
	for _, adv := range advs {
		for _, tc := range []struct{ n, t int }{{9, 2}, {13, 3}} {
			for _, v := range []ident.Value{ident.V0, ident.V1} {
				if _, _, err := core.RunAndCheck(context.Background(), cfg(tc.n, tc.t, v, adv)); err != nil {
					t.Fatalf("%s n=%d t=%d v=%v: %v", adv.Name(), tc.n, tc.t, v, err)
				}
			}
		}
	}
}

func TestSplitBrainTransmitter(t *testing.T) {
	// An equivocating transmitter seeds the system with mixed values; the
	// king phases must still converge.
	for _, tc := range []struct{ n, t int }{{9, 2}, {13, 3}} {
		for split := 1; split < tc.n; split += 3 {
			adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(split)}
			res, err := core.Run(context.Background(), cfg(tc.n, tc.t, ident.V1, adv))
			if err != nil {
				t.Fatal(err)
			}
			assertAgreement(t, fmt.Sprintf("n=%d split=%d", tc.n, split), res)
		}
	}
}

func TestFaultyKings(t *testing.T) {
	// Corrupt exactly the first t kings (processors 1..t plus 0 stays
	// correct as transmitter... corrupt ids 1..t): the remaining correct
	// king (one of 0..t must be correct) still forces convergence.
	n, tt := 13, 3
	faulty := ident.NewSet(1, 2, 3)
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		if _, _, err := core.RunAndCheck(context.Background(), core.Config{
			Protocol: phaseking.Protocol{}, N: n, T: tt, Value: v,
			Scheme: sig.NewPlain(n), Adversary: adversary.Silent{}, FaultyOverride: faulty, Seed: 2,
		}); err != nil {
			t.Fatalf("v=%v: %v", v, err)
		}
	}
}

func TestChaosSweep(t *testing.T) {
	for seed := 0; seed < 10; seed++ {
		res, err := core.Run(context.Background(), core.Config{
			Protocol: phaseking.Protocol{}, N: 13, T: 3, Value: ident.V1,
			Scheme: sig.NewPlain(13), Adversary: adversary.Chaos{}, Seed: int64(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		assertAgreement(t, fmt.Sprintf("seed=%d", seed), res)
		if !res.Faulty.Has(0) {
			for id, d := range res.Sim.Decisions {
				if !res.Faulty.Has(id) && d.Value != ident.V1 {
					t.Fatalf("seed=%d: validity violated", seed)
				}
			}
		}
	}
}

func TestAboveUnauthLowerBound(t *testing.T) {
	// Corollary 1 applies: the fault-free count must exceed n(t+1)/4.
	for _, tc := range []struct{ n, t int }{{9, 2}, {13, 3}, {21, 5}} {
		res, _, err := core.RunAndCheck(context.Background(), cfg(tc.n, tc.t, ident.V1, nil))
		if err != nil {
			t.Fatal(err)
		}
		if got, bound := res.Sim.Report.MessagesCorrect, core.MsgLowerBoundUnauth(tc.n, tc.t); got < bound {
			t.Fatalf("n=%d t=%d: %d < %d", tc.n, tc.t, got, bound)
		}
	}
}

func assertAgreement(t *testing.T, label string, res *core.Result) {
	t.Helper()
	var first ident.Value
	seen := false
	for id, d := range res.Sim.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			t.Fatalf("%s: %v undecided", label, id)
		}
		if !seen {
			first, seen = d.Value, true
		} else if d.Value != first {
			t.Fatalf("%s: disagreement %v vs %v", label, d.Value, first)
		}
	}
}
