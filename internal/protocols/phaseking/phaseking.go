// Package phaseking implements the Phase King consensus algorithm of
// Berman, Garay and Perry in its simple n > 4t form, adapted to the
// Byzantine-broadcast interface of this module (the transmitter first
// distributes its value, then the system runs consensus on the received
// values). It complements the LSP/EIG baseline on the unauthenticated
// side: EIG is message-light but keeps exponential state in t, Phase King
// is polynomial everywhere — n(n-1)(t+1) + O(nt) messages across 2t+3
// phases — at the price of a worse resilience ratio.
//
//	Phase 0:            the transmitter broadcasts its value; everybody
//	                    adopts what arrives (default 0).
//	Round 1 of king k:  everybody broadcasts its current value and counts.
//	Round 2 of king k:  processor k broadcasts its majority value; each
//	                    processor keeps its own majority if it saw more
//	                    than n/2 + t agreeing votes, else adopts the
//	                    king's.
//
// With t+1 kings at least one is correct, and n > 4t makes a
// super-majority sticky: after the correct king's phase all correct
// processors agree and never diverge again.
package phaseking

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// Protocol is the Phase King baseline.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "phase-king" }

// Check implements protocol.Protocol: the simple variant needs n > 4t.
func (Protocol) Check(n, t int) error {
	if t < 0 || n <= 4*t || n < 2 {
		return fmt.Errorf("%w: phase-king requires n > 4t (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	return nil
}

// Phases implements protocol.Protocol: the phase-0 broadcast plus two
// rounds per king.
func (Protocol) Phases(_, t int) int { return 1 + 2*(t+1) }

// MsgUpperBound is the closed-form message count: the broadcast plus a
// full exchange per king round 1 and a king broadcast per round 2.
func MsgUpperBound(n, t int) int { return (n - 1) + (t+1)*(n*(n-1)+(n-1)) }

// NewNode implements protocol.Protocol.
func (Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &node{cfg: cfg, current: ident.V0}, nil
}

// Message tags.
const (
	tagInit byte = 0x71 // transmitter's phase-0 value
	tagVote byte = 0x72 // round 1 vote
	tagKing byte = 0x73 // round 2 king value
)

func encode(tag byte, v ident.Value) []byte {
	w := wire.NewWriter(10)
	w.Byte(tag)
	w.Value(v)
	return w.Bytes()
}

func decode(payload []byte, wantTag byte) (ident.Value, bool) {
	if len(payload) == 0 || payload[0] != wantTag {
		return 0, false
	}
	r := wire.NewReader(payload[1:])
	v := r.Value()
	if r.Finish() != nil {
		return 0, false
	}
	return v, true
}

type node struct {
	cfg     protocol.NodeConfig
	current ident.Value

	// Round-1 state for the in-flight king phase.
	maj ident.Value
	cnt int
}

var _ sim.Node = (*node)(nil)

// kingOf returns the king of king-phase k (0-based), skipping nobody: the
// first t+1 processors each take one phase.
func kingOf(k int) ident.ProcID { return ident.ProcID(k) }

func (n *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	phase := ctx.Phase()
	t := ctx.T()

	switch {
	case phase == 1:
		// Phase 0: the transmitter distributes its value.
		if n.cfg.IsTransmitter() {
			n.current = n.cfg.Value
			return protocol.Broadcast(ctx, encode(tagInit, n.cfg.Value))
		}
		return nil

	case phase == 2:
		// Adopt the transmitter's value, then cast the first vote.
		for _, env := range inbox {
			if env.From != n.cfg.Transmitter {
				continue
			}
			if v, ok := decode(env.Payload, tagInit); ok {
				n.current = v
				break
			}
		}
		return protocol.Broadcast(ctx, encode(tagVote, n.current))

	case phase > 2 && phase <= 2+2*(t+1):
		// King phase k occupies phases 2k+2 (votes out in the previous
		// step, counted here; king speaks) and 2k+3 (king's value counted;
		// next phase's votes go out).
		rel := phase - 3 // 0-based within the king schedule
		k := rel / 2
		if rel%2 == 0 {
			// Count the votes sent last phase — one per sender (a faulty
			// processor must not stuff the ballot with duplicates).
			counts := make(map[ident.Value]int)
			voted := make(ident.Set)
			for _, env := range inbox {
				if voted.Has(env.From) {
					continue
				}
				if v, ok := decode(env.Payload, tagVote); ok {
					voted.Add(env.From)
					counts[v]++
				}
			}
			counts[n.current]++ // our own vote
			n.maj, n.cnt = majority(counts)
			// The king announces its majority.
			if kingOf(k) == n.cfg.ID {
				return protocol.Broadcast(ctx, encode(tagKing, n.maj))
			}
			return nil
		}
		// Resolve against the king's announcement, then vote for the next
		// king phase (if any).
		kingVal := ident.V0
		for _, env := range inbox {
			if env.From != kingOf(k) {
				continue
			}
			if v, ok := decode(env.Payload, tagKing); ok {
				kingVal = v
				break
			}
		}
		if n.cnt > ctx.N()/2+t {
			n.current = n.maj
		} else {
			n.current = kingVal
		}
		if k+1 <= t { // another king phase follows
			return protocol.Broadcast(ctx, encode(tagVote, n.current))
		}
		return nil
	}
	return nil
}

// majority returns the plurality value and its count, ties broken toward
// the smaller value for determinism.
func majority(counts map[ident.Value]int) (ident.Value, int) {
	var best ident.Value
	bestCnt := -1
	for v, c := range counts {
		if c > bestCnt || (c == bestCnt && v < best) {
			best, bestCnt = v, c
		}
	}
	return best, bestCnt
}

func (n *node) Decide() (ident.Value, bool) { return n.current, true }
