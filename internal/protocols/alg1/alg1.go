// Package alg1 implements Algorithm 1 of the paper (Theorem 3): an
// authenticated Byzantine Agreement protocol for n = 2t+1 processors that
// finishes in t+2 phases and sends at most 2t² + 2t messages.
//
// The 2t non-transmitter processors are split into sets A and B of size t.
// Communication follows the graph G formed by the complete bipartite graph
// on (A, B) plus edges from the transmitter q to everybody. A "correct
// 1-message" received at phase k is the value 1 carrying a signature chain
// that, together with the receiver, forms a simple path of length k from q
// through alternating sides of G.
//
//	Phase 1:        the transmitter signs and sends its value to everybody.
//	Phases 2..t+2:  on first receiving a correct 1-message, a processor
//	                signs it and sends it to everybody on the other side.
//	Decision:       1 if a correct 1-message arrived by phase t+2, else 0.
//
// The Core type is embeddable so Algorithms 2, 3 and 5 can run it among a
// subgroup of a larger system.
package alg1

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// Core is the per-processor state machine, operating within an explicit
// group (group[0] is the transmitter; the remaining 2t members split into
// A = group[1..t] and B = group[t+1..2t]).
type Core struct {
	group    []ident.ProcID
	indexOf  map[ident.ProcID]int
	t        int
	me       int // my index within group
	value    ident.Value
	signer   sig.Signer
	verifier sig.Verifier

	got1    bool
	got1At  int // relative phase at which the first correct 1-message arrived
	best    sig.SignedValue
	relayed bool
}

// NewCore builds the Algorithm 1 state machine for group member me. The
// group must have exactly 2t+1 members; value is used only by the
// transmitter (group[0]).
func NewCore(group []ident.ProcID, t int, me ident.ProcID, value ident.Value, signer sig.Signer, verifier sig.Verifier) (*Core, error) {
	if len(group) != 2*t+1 {
		return nil, fmt.Errorf("%w: alg1 needs |group| = 2t+1, got %d for t=%d", protocol.ErrBadParams, len(group), t)
	}
	idx := make(map[ident.ProcID]int, len(group))
	for i, id := range group {
		if _, dup := idx[id]; dup {
			return nil, fmt.Errorf("%w: duplicate group member %v", protocol.ErrBadParams, id)
		}
		idx[id] = i
	}
	mi, ok := idx[me]
	if !ok {
		return nil, fmt.Errorf("%w: %v not in group", protocol.ErrBadParams, me)
	}
	return &Core{
		group:    append([]ident.ProcID(nil), group...),
		indexOf:  idx,
		t:        t,
		me:       mi,
		value:    value,
		signer:   signer,
		verifier: verifier,
	}, nil
}

// LastPhase returns the last phase during which Algorithm 1 sends (t+2).
// One further delivery-only step completes the decision.
func LastPhase(t int) int { return t + 2 }

// side classifies a group index: 0 = transmitter, 1 = set A, 2 = set B.
func (c *Core) side(idx int) int {
	switch {
	case idx == 0:
		return 0
	case idx <= c.t:
		return 1
	default:
		return 2
	}
}

// otherSide returns the group indices of the opposite non-transmitter side.
func (c *Core) otherSide() []ident.ProcID {
	var lo, hi int
	if c.side(c.me) == 1 {
		lo, hi = c.t+1, 2*c.t
	} else {
		lo, hi = 1, c.t
	}
	out := make([]ident.ProcID, 0, c.t)
	for i := lo; i <= hi; i++ {
		out = append(out, c.group[i])
	}
	return out
}

// isCorrect1Message validates a payload received at relative phase k (i.e.
// sent during phase k) against the "correct 1-message" predicate for this
// receiver.
func (c *Core) isCorrect1Message(payload []byte, from ident.ProcID, k int) (sig.SignedValue, bool) {
	sv, err := sig.UnmarshalSignedValue(payload)
	if err != nil || sv.Value != ident.V1 {
		return sig.SignedValue{}, false
	}
	if len(sv.Chain) != k {
		return sig.SignedValue{}, false
	}
	// The chain plus this receiver must form a simple path of length k from
	// the transmitter through G.
	prev := -1
	seen := make(ident.Set, k+1)
	for i, link := range sv.Chain {
		idx, ok := c.indexOf[link.Signer]
		if !ok || !seen.Add(link.Signer) {
			return sig.SignedValue{}, false
		}
		s := c.side(idx)
		switch {
		case i == 0:
			if s != 0 { // path starts at the transmitter
				return sig.SignedValue{}, false
			}
		case s == 0: // transmitter cannot reappear
			return sig.SignedValue{}, false
		case i > 1 && s == prev: // must alternate sides after the first hop
			return sig.SignedValue{}, false
		}
		prev = s
	}
	// The edge (last signer -> receiver) must exist in G and keep the path
	// simple: the receiver must not already be on it.
	if seen.Has(c.group[c.me]) {
		return sig.SignedValue{}, false
	}
	if k > 1 && c.side(c.me) == prev {
		return sig.SignedValue{}, false
	}
	// The immediate sender must be the last signer (paths are relayed hop
	// by hop; accepting detours would let faulty processors spend correct
	// processors' single relay on malformed routes).
	if from != sv.Chain[len(sv.Chain)-1].Signer {
		return sig.SignedValue{}, false
	}
	if err := sv.Verify(c.verifier); err != nil {
		return sig.SignedValue{}, false
	}
	return sv, true
}

// Step advances the state machine. phase is the relative phase (1-based);
// inbox must contain only messages addressed to this member that were sent
// during phase-1 by other group members (callers embedding the core filter
// accordingly). Messages are sent through ctx at the current engine phase,
// which embedders must keep aligned with the relative phase.
func (c *Core) Step(ctx *sim.Context, inbox []sim.Envelope, phase int) error {
	if c.me == 0 {
		// Transmitter: sign and send the value to everybody at phase 1.
		if phase == 1 {
			sv := sig.NewSignedValue(c.signer, c.value)
			payload := sv.Marshal()
			if err := protocol.SendToAll(ctx, c.group[1:], payload, sv.Chain); err != nil {
				return err
			}
		}
		return nil
	}

	// Scan the inbox (messages sent during phase-1) for correct 1-messages.
	if !c.got1 && phase > 1 {
		for _, env := range inbox {
			if sv, ok := c.isCorrect1Message(env.Payload, env.From, phase-1); ok {
				c.got1 = true
				c.got1At = phase - 1
				c.best = sv
				break
			}
		}
	}

	// Relay once: sign the first correct 1-message and send it to the
	// other side, within the sending window (phases 2..t+2).
	if c.got1 && !c.relayed && phase >= 2 && phase <= c.t+2 {
		c.relayed = true
		signed := c.best.CoSign(c.signer)
		payload := signed.Marshal()
		if err := protocol.SendToAll(ctx, c.otherSide(), payload, signed.Chain); err != nil {
			return err
		}
	}
	return nil
}

// Decide implements the decision function: the transmitter keeps its own
// value; everybody else decides 1 iff a correct 1-message arrived by phase
// t+2.
func (c *Core) Decide() (ident.Value, bool) {
	if c.me == 0 {
		return c.value, true
	}
	if c.got1 {
		return ident.V1, true
	}
	return ident.V0, true
}

// Committed returns the value this member has committed to (identical to
// Decide; Algorithm 2 reads it once Algorithm 1 has completed).
func (c *Core) Committed() ident.Value {
	v, _ := c.Decide()
	return v
}

// Evidence returns the correct 1-message that triggered the decision, when
// the decision is 1 and this member is not the transmitter.
func (c *Core) Evidence() (sig.SignedValue, bool) { return c.best, c.got1 }

// ReceivedAt returns the relative phase at which the first correct
// 1-message arrived (0 when none did).
func (c *Core) ReceivedAt() int {
	if !c.got1 {
		return 0
	}
	return c.got1At
}

// ---------------------------------------------------------------------------
// Protocol wrapper (standalone use: the group is the whole system).

// Protocol runs Algorithm 1 over the entire system (n = 2t+1, transmitter
// is processor 0).
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "alg1" }

// Check implements protocol.Protocol: Algorithm 1 requires n = 2t+1, t ≥ 1.
func (Protocol) Check(n, t int) error {
	if t < 1 || n != 2*t+1 {
		return fmt.Errorf("%w: alg1 requires n = 2t+1 with t ≥ 1 (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (Protocol) Phases(_, t int) int { return LastPhase(t) }

// NewNode implements protocol.Protocol.
func (Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.RequireBinaryValue(); err != nil {
		return nil, err
	}
	if cfg.Transmitter != 0 {
		return nil, fmt.Errorf("%w: alg1 assumes transmitter 0", protocol.ErrBadParams)
	}
	core, err := NewCore(ident.Range(cfg.N), cfg.T, cfg.ID, cfg.Value, cfg.Signer, cfg.Verifier)
	if err != nil {
		return nil, err
	}
	return &node{core: core}, nil
}

type node struct {
	core *Core
}

var _ sim.Node = (*node)(nil)

func (n *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	return n.core.Step(ctx, inbox, ctx.Phase())
}

func (n *node) Decide() (ident.Value, bool) { return n.core.Decide() }
