package alg1_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
	"byzex/internal/sig"
)

func run(t *testing.T, tt int, v ident.Value, adv adversary.Adversary, faulty ident.Set) *core.Result {
	t.Helper()
	n := 2*tt + 1
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: alg1.Protocol{}, N: n, T: tt, Value: v,
		Adversary: adv, FaultyOverride: faulty, Seed: 21,
	})
	if err != nil {
		t.Fatalf("t=%d v=%v: %v", tt, v, err)
	}
	return res
}

func TestCheckRejectsWrongShape(t *testing.T) {
	p := alg1.Protocol{}
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {3, 0}, {0, 0}, {6, 3}} {
		if err := p.Check(tc.n, tc.t); err == nil {
			t.Errorf("Check(%d,%d) accepted", tc.n, tc.t)
		}
	}
	if err := p.Check(7, 3); err != nil {
		t.Errorf("Check(7,3) rejected: %v", err)
	}
}

func TestWorstCaseIsExactBound(t *testing.T) {
	// The fault-free value-1 run realizes exactly 2t²+2t messages: the
	// transmitter sends 2t and each of the 2t others relays to t.
	for tt := 1; tt <= 10; tt++ {
		res := run(t, tt, ident.V1, nil, nil)
		if got, want := res.Sim.Report.MessagesCorrect, core.Alg1MsgUpperBound(tt); got != want {
			t.Errorf("t=%d: %d msgs, want exactly %d", tt, got, want)
		}
	}
}

func TestValueZeroIsCheap(t *testing.T) {
	// With value 0 only the transmitter speaks: 2t messages.
	for tt := 1; tt <= 8; tt++ {
		res := run(t, tt, ident.V0, nil, nil)
		if got := res.Sim.Report.MessagesCorrect; got != 2*tt {
			t.Errorf("t=%d: %d msgs, want %d", tt, got, 2*tt)
		}
	}
}

func TestAdversarySuite(t *testing.T) {
	advs := []adversary.Adversary{
		adversary.Silent{},
		adversary.Crash{CrashAfter: 2},
		adversary.Garbage{PerPhase: 5},
	}
	for _, adv := range advs {
		for tt := 1; tt <= 5; tt++ {
			for _, v := range []ident.Value{ident.V0, ident.V1} {
				res := run(t, tt, v, adv, nil)
				if got, bound := res.Sim.Report.MessagesCorrect, core.Alg1MsgUpperBound(tt); got > bound {
					t.Errorf("%s t=%d: %d > %d", adv.Name(), tt, got, bound)
				}
			}
		}
	}
}

func TestSplitBrainAllSplits(t *testing.T) {
	// Condition (i) must hold for every possible audience split of the
	// equivocating transmitter.
	tt := 3
	n := 2*tt + 1
	for split := 1; split < n; split++ {
		adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(split)}
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg1.Protocol{}, N: n, T: tt, Value: ident.V1, Adversary: adv, Seed: int64(split),
		})
		if err != nil {
			t.Fatal(err)
		}
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("split=%d: %v undecided", split, id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("split=%d: disagreement", split)
			}
		}
	}
}

func TestFaultyCoalitionOnOneSide(t *testing.T) {
	// All faults on the A side: B must still converge through the
	// transmitter and the surviving A relays... with the whole A side
	// faulty (t faults), the transmitter and B are correct.
	tt := 3
	faulty := ident.NewSet(1, 2, 3) // the entire A side
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		run(t, tt, v, adversary.Silent{}, faulty)
	}
}

func TestForgedChainsRejected(t *testing.T) {
	// A garbage adversary that replays random bytes must never induce a
	// 1-decision in a value-0 run (forging a correct 1-message requires
	// the transmitter's signature).
	tt := 4
	res := run(t, tt, ident.V0, adversary.Garbage{PerPhase: 10}, nil)
	for id, d := range res.Sim.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if d.Value != ident.V0 {
			t.Fatalf("%v decided %v from garbage", id, d.Value)
		}
	}
}

func TestNewCoreValidation(t *testing.T) {
	scheme := sig.NewHMAC(8, 1)
	s0, _ := scheme.Signer(0)
	if _, err := alg1.NewCore(ident.Range(4), 2, 0, ident.V0, s0, scheme); err == nil {
		t.Fatal("group of 4 for t=2 accepted")
	}
	if _, err := alg1.NewCore([]ident.ProcID{0, 1, 1, 2, 3}, 2, 0, ident.V0, s0, scheme); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if _, err := alg1.NewCore(ident.Range(5), 2, 7, ident.V0, s0, scheme); err == nil {
		t.Fatal("outsider accepted")
	}
}

func TestPhaseSchedule(t *testing.T) {
	p := alg1.Protocol{}
	for tt := 1; tt <= 6; tt++ {
		if got := p.Phases(2*tt+1, tt); got != tt+2 {
			t.Errorf("Phases(t=%d) = %d", tt, got)
		}
	}
}
