package alg1_test

import (
	"context"
	"fmt"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/alg1"
)

func TestMultiFaultFreeArbitraryValues(t *testing.T) {
	for _, v := range []ident.Value{0, 1, 2, 7, -3, 1 << 30} {
		for tt := 1; tt <= 4; tt++ {
			n := 2*tt + 1
			res, got, err := core.RunAndCheck(context.Background(), core.Config{
				Protocol: alg1.MultiProtocol{}, N: n, T: tt, Value: v,
			})
			if err != nil {
				t.Fatalf("t=%d v=%v: %v", tt, v, err)
			}
			if got != v {
				t.Fatalf("t=%d: decided %v, want %v", tt, got, v)
			}
			if msgs, bound := res.Sim.Report.MessagesCorrect, alg1.MultiMsgUpperBound(tt); msgs > bound {
				t.Fatalf("t=%d: %d msgs > bound %d", tt, msgs, bound)
			}
		}
	}
}

func TestMultiTwoFacedTransmitter(t *testing.T) {
	// Equivocation between two non-binary values: the correct processors
	// converge (on one of the values or the default).
	for tt := 2; tt <= 4; tt++ {
		n := 2*tt + 1
		adv := adversary.MultiFaced{Values: []ident.Value{5, 9}}
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg1.MultiProtocol{}, N: n, T: tt, Value: 5, Adversary: adv, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		assertConditionOne(t, fmt.Sprintf("t=%d", tt), res)
	}
}

func TestMultiThreeFacedTransmitter(t *testing.T) {
	// Three personalities: more circulating values than the relay cap —
	// everyone must land on the default together.
	tt := 3
	n := 2*tt + 1
	adv := adversary.MultiFaced{Values: []ident.Value{3, 4, 5}}
	res, err := core.Run(context.Background(), core.Config{
		Protocol: alg1.MultiProtocol{}, N: n, T: tt, Value: 3, Adversary: adv, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertConditionOne(t, "three-faced", res)
}

func TestMultiChaosSweep(t *testing.T) {
	for seed := 0; seed < 8; seed++ {
		res, err := core.Run(context.Background(), core.Config{
			Protocol: alg1.MultiProtocol{}, N: 7, T: 3, Value: 11,
			Adversary: adversary.Chaos{}, Seed: int64(seed),
		})
		if err != nil {
			t.Fatal(err)
		}
		assertConditionOne(t, fmt.Sprintf("seed=%d", seed), res)
		if !res.Faulty.Has(0) {
			// Transmitter correct: validity must give exactly 11.
			for id, d := range res.Sim.Decisions {
				if !res.Faulty.Has(id) && d.Value != 11 {
					t.Fatalf("seed=%d: validity violated", seed)
				}
			}
		}
	}
}

func assertConditionOne(t *testing.T, label string, res *core.Result) {
	t.Helper()
	var first ident.Value
	seen := false
	for id, d := range res.Sim.Decisions {
		if res.Faulty.Has(id) {
			continue
		}
		if !d.Decided {
			t.Fatalf("%s: %v undecided", label, id)
		}
		if !seen {
			first, seen = d.Value, true
		} else if d.Value != first {
			t.Fatalf("%s: disagreement %v vs %v", label, d.Value, first)
		}
	}
}
