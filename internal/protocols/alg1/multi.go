package alg1

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// MultiProtocol is the multi-valued generalization the paper alludes to
// ("if the transmitter can send more than two values, one has to modify
// the algorithms slightly"): correct v-messages exist for *every* value v,
// every processor relays the first correct message per distinct value
// (capped at two distinct values — once two circulate, every correct
// processor's decision is already forced to the default), and the decision
// function picks the unique circulating value or falls to the default.
//
// Correctness follows the Theorem 3 argument value-by-value: whatever
// correct v-message any correct processor receives by phase t+2, every
// correct processor receives one by phase t+2 (a correct signer among the
// first t+1 links relayed it in time). Hence the sets of circulating
// values coincide across correct processors, and "unique value or default"
// agrees. The relay cap doubles the Theorem 3 message bound: ≤ 2(2t²+2t).
type MultiProtocol struct{}

var _ protocol.Protocol = MultiProtocol{}

// MultiMsgUpperBound is the message bound for the multi-valued variant:
// twice Theorem 3's, since each processor relays at most two values.
func MultiMsgUpperBound(t int) int { return 2 * (2*t*t + 2*t) }

// Name implements protocol.Protocol.
func (MultiProtocol) Name() string { return "alg1-multi" }

// Check implements protocol.Protocol.
func (MultiProtocol) Check(n, t int) error { return Protocol{}.Check(n, t) }

// Phases implements protocol.Protocol.
func (MultiProtocol) Phases(_, t int) int { return LastPhase(t) }

// NewNode implements protocol.Protocol.
func (MultiProtocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Transmitter != 0 {
		return nil, fmt.Errorf("%w: alg1-multi assumes transmitter 0", protocol.ErrBadParams)
	}
	group := ident.Range(cfg.N)
	idx := make(map[ident.ProcID]int, len(group))
	for i, id := range group {
		idx[id] = i
	}
	return &multiNode{
		cfg:     cfg,
		group:   group,
		indexOf: idx,
		seen:    make(map[ident.Value]sig.SignedValue),
	}, nil
}

type multiNode struct {
	cfg     protocol.NodeConfig
	group   []ident.ProcID
	indexOf map[ident.ProcID]int
	// seen maps circulating values to the first correct message received
	// for them (capped at two entries).
	seen map[ident.Value]sig.SignedValue
	// relayQueue holds values to relay this phase.
	relayQueue []sig.SignedValue
}

var _ sim.Node = (*multiNode)(nil)

// side classifies a group index as in the binary core.
func (m *multiNode) side(idx int) int {
	switch {
	case idx == 0:
		return 0
	case idx <= m.cfg.T:
		return 1
	default:
		return 2
	}
}

func (m *multiNode) otherSide() []ident.ProcID {
	t := m.cfg.T
	var lo, hi int
	if m.side(m.indexOf[m.cfg.ID]) == 1 {
		lo, hi = t+1, 2*t
	} else {
		lo, hi = 1, t
	}
	out := make([]ident.ProcID, 0, t)
	for i := lo; i <= hi; i++ {
		out = append(out, m.group[i])
	}
	return out
}

// isCorrectMessage validates a correct v-message of length k for this
// receiver (same path predicate as the binary core, any value).
func (m *multiNode) isCorrectMessage(payload []byte, from ident.ProcID, k int) (sig.SignedValue, bool) {
	sv, err := sig.UnmarshalSignedValue(payload)
	if err != nil || len(sv.Chain) != k {
		return sig.SignedValue{}, false
	}
	prev := -1
	seen := make(ident.Set, k+1)
	for i, link := range sv.Chain {
		idx, ok := m.indexOf[link.Signer]
		if !ok || !seen.Add(link.Signer) {
			return sig.SignedValue{}, false
		}
		s := m.side(idx)
		switch {
		case i == 0:
			if s != 0 {
				return sig.SignedValue{}, false
			}
		case s == 0:
			return sig.SignedValue{}, false
		case i > 1 && s == prev:
			return sig.SignedValue{}, false
		}
		prev = s
	}
	if seen.Has(m.cfg.ID) {
		return sig.SignedValue{}, false
	}
	if k > 1 && m.side(m.indexOf[m.cfg.ID]) == prev {
		return sig.SignedValue{}, false
	}
	if from != sv.Chain[len(sv.Chain)-1].Signer {
		return sig.SignedValue{}, false
	}
	if sv.Verify(m.cfg.Verifier) != nil {
		return sig.SignedValue{}, false
	}
	return sv, true
}

func (m *multiNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	t := m.cfg.T
	phase := ctx.Phase()

	if m.cfg.IsTransmitter() {
		if phase == 1 {
			sv := sig.NewSignedValue(m.cfg.Signer, m.cfg.Value)
			return protocol.SendToAll(ctx, m.group[1:], sv.Marshal(), sv.Chain)
		}
		return nil
	}

	if phase > 1 {
		for _, env := range inbox {
			sv, ok := m.isCorrectMessage(env.Payload, env.From, phase-1)
			if !ok {
				continue
			}
			if _, dup := m.seen[sv.Value]; dup {
				continue
			}
			if len(m.seen) >= 2 {
				continue // decision already forced to the default
			}
			m.seen[sv.Value] = sv
			m.relayQueue = append(m.relayQueue, sv)
		}
	}

	if phase >= 2 && phase <= t+2 {
		for _, sv := range m.relayQueue {
			signed := sv.CoSign(m.cfg.Signer)
			if err := protocol.SendToAll(ctx, m.otherSide(), signed.Marshal(), signed.Chain); err != nil {
				return err
			}
		}
		m.relayQueue = m.relayQueue[:0]
	}
	return nil
}

// Decide picks the unique circulating value or the default.
func (m *multiNode) Decide() (ident.Value, bool) {
	if m.cfg.IsTransmitter() {
		return m.cfg.Value, true
	}
	if len(m.seen) == 1 {
		for v := range m.seen {
			return v, true
		}
	}
	return ident.V0, true
}
