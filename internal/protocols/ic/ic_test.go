package ic_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/ic"
)

func runIC(t *testing.T, base protocol.Protocol, n, tt int, v ident.Value, adv adversary.Adversary) *core.Result {
	t.Helper()
	res, err := core.Run(context.Background(), core.Config{
		Protocol: ic.Protocol{Base: base}, N: n, T: tt, Value: v,
		Adversary: adv, Seed: 77,
	})
	if err != nil {
		t.Fatalf("ic(%s) n=%d t=%d: %v", base.Name(), n, tt, err)
	}
	return res
}

// checkVectors asserts interactive consistency: all correct processors hold
// the same vector, and slots of correct processors carry their real inputs.
func checkVectors(t *testing.T, res *core.Result, n int, v ident.Value) {
	t.Helper()
	var ref []ident.Value
	for id, nd := range res.Nodes {
		pid := ident.ProcID(id)
		if res.Faulty.Has(pid) {
			continue
		}
		holder, ok := nd.(ic.VectorHolder)
		if !ok {
			t.Fatalf("node %d is not a vector holder", id)
		}
		vec, decided := holder.Vector()
		if !decided {
			t.Fatalf("node %d has an incomplete vector", id)
		}
		if len(vec) != n {
			t.Fatalf("node %d vector length %d", id, len(vec))
		}
		if ref == nil {
			ref = vec
		} else {
			for k := range vec {
				if vec[k] != ref[k] {
					t.Fatalf("vectors disagree at slot %d: %v vs %v", k, vec[k], ref[k])
				}
			}
		}
	}
	if ref == nil {
		t.Fatal("no correct processors")
	}
	// Validity per slot: correct processor k's slot holds its input.
	for k := 0; k < n; k++ {
		pid := ident.ProcID(k)
		if res.Faulty.Has(pid) {
			continue
		}
		want := ic.OwnInput(pid, v)
		if ref[k] != want {
			t.Fatalf("slot %d = %v, want %v", k, ref[k], want)
		}
	}
}

func TestVectorFaultFree(t *testing.T) {
	for _, base := range []protocol.Protocol{dolevstrong.Protocol{}, alg1.Protocol{}, alg2.Protocol{}} {
		n, tt := 7, 2
		if base.Check(n, tt) != nil {
			n, tt = 5, 2 // alg1/alg2 need n = 2t+1
		}
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			res := runIC(t, base, n, tt, v, nil)
			checkVectors(t, res, n, v)
		}
	}
}

func TestVectorUnderFaults(t *testing.T) {
	for _, adv := range []adversary.Adversary{
		adversary.Silent{},
		adversary.Crash{CrashAfter: 1},
		adversary.Garbage{},
	} {
		res := runIC(t, dolevstrong.Protocol{}, 7, 2, ident.V1, adv)
		checkVectors(t, res, 7, ident.V1)
	}
}

func TestVectorSplitBrain(t *testing.T) {
	// The outer transmitter equivocates. Its own slot may hold anything,
	// but all correct processors must hold identical vectors and the
	// correct slots must be right.
	adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: 3}
	res := runIC(t, dolevstrong.Protocol{}, 7, 2, ident.V1, adv)
	checkVectors(t, res, 7, ident.V1)
}

func TestCrossInstanceReplayImpossible(t *testing.T) {
	// The domain separation makes instance signatures incompatible: a
	// garbage adversary that replays raw bytes across instances (its
	// payloads land in random instances) must never corrupt any slot.
	res := runIC(t, dolevstrong.Protocol{}, 7, 2, ident.V1, adversary.Garbage{PerPhase: 8})
	checkVectors(t, res, 7, ident.V1)
}

func TestMessageCostIsNTimesBase(t *testing.T) {
	n, tt := 7, 2
	baseRes, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: dolevstrong.Protocol{}, N: n, T: tt, Value: ident.V1,
	})
	if err != nil {
		t.Fatal(err)
	}
	icRes := runIC(t, dolevstrong.Protocol{}, n, tt, ident.V1, nil)
	base := baseRes.Sim.Report.MessagesCorrect
	got := icRes.Sim.Report.MessagesCorrect
	// Each instance is a value-0 or value-1 fault-free run; both cost the
	// same n(n-1) for Dolev-Strong, so the total is exactly n×base.
	if got != n*base {
		t.Fatalf("ic messages %d, want %d (= %d × %d)", got, n*base, n, base)
	}
}

func TestVectorOverAlg5(t *testing.T) {
	// Interactive consistency composes with the message-optimal algorithm
	// too: n parallel Algorithm 5 instances.
	n, tt := 25, 2
	res := runIC(t, alg5.Protocol{S: tt}, n, tt, ident.V1, nil)
	checkVectors(t, res, n, ident.V1)
}

func TestCheckPropagates(t *testing.T) {
	p := ic.Protocol{Base: alg1.Protocol{}}
	if err := p.Check(6, 2); err == nil {
		t.Fatal("base constraint not propagated")
	}
	if err := (ic.Protocol{}).Check(7, 2); err == nil {
		t.Fatal("nil base accepted")
	}
}
