// Package ic builds Interactive Consistency — every processor obtains a
// vector of all n private values — by running n instances of any Byzantine
// Agreement protocol in parallel, one per transmitter. This is the
// classical reduction from the paper's motivating literature (Pease,
// Shostak, Lamport [15]): the information-exchange cost is n times the
// underlying protocol's, so the paper's message-optimal algorithms
// directly yield message-optimal interactive consistency.
//
// Instances are multiplexed over the synchronous engine:
//
//   - identities are rotated so that instance k's transmitter (global
//     processor k) appears as local processor 0 to the base protocol;
//   - every payload carries its instance index;
//   - signatures are domain-separated per instance (the instance index is
//     mixed into the signed bytes), so a signature harvested in one
//     instance can never be replayed as part of another — without this, a
//     processor's signature over a bare value in instance k would be
//     indistinguishable from its transmitter signature in its own
//     instance.
package ic

import (
	"fmt"
	"sort"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
	"byzex/internal/wire"
)

// Protocol runs one Base instance per processor. Base must follow the
// package-wide convention that the transmitter is processor 0 (all
// protocols in this module do).
type Protocol struct {
	Base protocol.Protocol
}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (p Protocol) Name() string { return "ic(" + p.Base.Name() + ")" }

// Check implements protocol.Protocol.
func (p Protocol) Check(n, t int) error {
	if p.Base == nil {
		return fmt.Errorf("%w: ic needs a base protocol", protocol.ErrBadParams)
	}
	return p.Base.Check(n, t)
}

// Phases implements protocol.Protocol: all instances run in lock step.
func (p Protocol) Phases(n, t int) int { return p.Base.Phases(n, t) }

// NewNode implements protocol.Protocol.
func (p Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Transmitter != 0 {
		return nil, fmt.Errorf("%w: ic assumes transmitter 0", protocol.ErrBadParams)
	}
	nd := &node{cfg: cfg, inner: make([]sim.Node, cfg.N)}
	for k := 0; k < cfg.N; k++ {
		local := localID(cfg.ID, ident.ProcID(k), cfg.N)
		instCfg := protocol.NodeConfig{
			ID:          local,
			N:           cfg.N,
			T:           cfg.T,
			Transmitter: 0,
			Signer:      &instSigner{inner: cfg.Signer, local: local, inst: k},
			Verifier:    &instVerifier{inner: cfg.Verifier, n: cfg.N, inst: k},
		}
		if local == 0 {
			// We are this instance's transmitter; our private value rides
			// in instance k = our own id. (Every processor contributes
			// Value; for non-transmitters of the outer run the value is
			// derived deterministically so tests can check the vector.)
			instCfg.Value = OwnInput(cfg.ID, cfg.Value)
		}
		in, err := p.Base.NewNode(instCfg)
		if err != nil {
			return nil, fmt.Errorf("ic: instance %d: %w", k, err)
		}
		nd.inner[k] = in
	}
	return nd, nil
}

// OwnInput derives processor id's private input for the vector: the outer
// transmitter (processor 0) contributes the configured value; everybody
// else contributes a deterministic function of its identity, which keeps
// the expected vector checkable in tests and examples.
func OwnInput(id ident.ProcID, configured ident.Value) ident.Value {
	if id == 0 {
		return configured
	}
	return ident.Value(int64(id) % 2)
}

// localID rotates global identities so that instance k's transmitter
// (global k) becomes local 0.
func localID(global, k ident.ProcID, n int) ident.ProcID {
	return ident.ProcID((int(global) - int(k) + n) % n)
}

// globalID inverts localID.
func globalID(local, k ident.ProcID, n int) ident.ProcID {
	return ident.ProcID((int(local) + int(k)) % n)
}

// instSigner signs under a per-instance domain tag and reports the local
// identity to the base protocol.
type instSigner struct {
	inner sig.Signer
	local ident.ProcID
	inst  int
}

var _ sig.Signer = (*instSigner)(nil)

func (s *instSigner) ID() ident.ProcID { return s.local }

func (s *instSigner) Sign(msg []byte) []byte { return s.inner.Sign(domain(s.inst, msg)) }

// instVerifier maps local signer identities back to global ones and checks
// under the instance's domain tag.
type instVerifier struct {
	inner sig.Verifier
	n     int
	inst  int
}

var _ sig.Verifier = (*instVerifier)(nil)

func (v *instVerifier) Verify(local ident.ProcID, msg, sigBytes []byte) bool {
	if int(local) < 0 || int(local) >= v.n {
		return false
	}
	global := globalID(local, ident.ProcID(v.inst), v.n)
	return v.inner.Verify(global, domain(v.inst, msg), sigBytes)
}

// domain prefixes msg with the instance index.
func domain(inst int, msg []byte) []byte {
	w := wire.NewWriter(len(msg) + 8)
	w.Uint(uint64(inst))
	out := append(w.Bytes(), msg...)
	return out
}

// node multiplexes the n inner state machines.
type node struct {
	cfg   protocol.NodeConfig
	inner []sim.Node
}

var _ sim.Node = (*node)(nil)

func (nd *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	n := nd.cfg.N
	// Demultiplex the inbox by instance tag.
	perInst := make([][]sim.Envelope, n)
	for _, env := range inbox {
		r := wire.NewReader(env.Payload)
		inst := int(r.Uint())
		if r.Err() != nil || inst < 0 || inst >= n {
			continue
		}
		local := env
		local.Payload = r.Rest()
		local.From = localID(env.From, ident.ProcID(inst), n)
		perInst[inst] = append(perInst[inst], local)
	}
	// Mirror the engine's inbox contract within each instance: sorted by
	// (local) sender, stable.
	for _, msgs := range perInst {
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
	}

	for k := 0; k < n; k++ {
		inst := k
		// Build a translated context: local identities in, global
		// envelopes out (instance-tagged payloads, translated recipients
		// and signer lists).
		local := localID(nd.cfg.ID, ident.ProcID(k), n)
		ictx := sim.NewContext(local, n, nd.cfg.T, 0, ctx.Phase(), phasesOf(ctx), func(e sim.Envelope) {
			w := wire.NewWriter(len(e.Payload) + 8)
			w.Uint(uint64(inst))
			payload := append(w.Bytes(), e.Payload...)
			signers := make([]ident.ProcID, len(e.Signers))
			for i, s := range e.Signers {
				signers[i] = globalID(s, ident.ProcID(inst), n)
			}
			// Errors surface through the outer context on the real send.
			_ = ctx.Send(globalID(e.To, ident.ProcID(inst), n), payload, signers, e.SigTotal)
		})
		if err := nd.inner[k].Step(ictx, perInst[k]); err != nil {
			return fmt.Errorf("ic: instance %d: %w", k, err)
		}
	}
	return nil
}

// phasesOf reconstructs the last sending phase for the translated context;
// the outer context enforces the real cut-off, so passing the current
// phase as the bound keeps inner sends flowing while the outer engine is
// still accepting them.
func phasesOf(ctx *sim.Context) int {
	// The outer engine rejects sends after its own last phase, so the
	// inner bound only needs to be ≥ the outer one.
	return ctx.Phase() + 1
}

// Decide returns the slot of instance 0 (the outer transmitter's value),
// which is what the engine-level agreement checks assert on.
func (nd *node) Decide() (ident.Value, bool) { return nd.inner[0].Decide() }

// Vector returns the full interactive-consistency vector: slot k holds the
// agreed value of processor k's instance.
func (nd *node) Vector() ([]ident.Value, bool) {
	out := make([]ident.Value, len(nd.inner))
	for k, in := range nd.inner {
		v, ok := in.Decide()
		if !ok {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}

// VectorHolder is implemented by ic nodes.
type VectorHolder interface {
	Vector() ([]ident.Value, bool)
}

var _ VectorHolder = (*node)(nil)
