package ic

import (
	"testing"
	"testing/quick"

	"byzex/internal/ident"
	"byzex/internal/sig"
)

func TestIdentityRotation(t *testing.T) {
	const n = 7
	for k := 0; k < n; k++ {
		// The instance's transmitter is local 0.
		if localID(ident.ProcID(k), ident.ProcID(k), n) != 0 {
			t.Fatalf("instance %d transmitter not local 0", k)
		}
		for g := 0; g < n; g++ {
			l := localID(ident.ProcID(g), ident.ProcID(k), n)
			if int(l) < 0 || int(l) >= n {
				t.Fatalf("local id out of range: %v", l)
			}
			if globalID(l, ident.ProcID(k), n) != ident.ProcID(g) {
				t.Fatalf("rotation not invertible at (g=%d,k=%d)", g, k)
			}
		}
	}
}

func TestQuickRotationBijective(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%20 + 1
		k := ident.ProcID(int(kRaw) % n)
		seen := make(ident.Set)
		for g := 0; g < n; g++ {
			if !seen.Add(localID(ident.ProcID(g), k, n)) {
				return false
			}
		}
		return seen.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDomainSeparation(t *testing.T) {
	// A signature produced inside instance 3 must not verify inside
	// instance 4, even for the same local identity and message.
	scheme := sig.NewHMAC(7, 9)
	inner, _ := scheme.Signer(5)

	// In instance 3, global 5 appears as local 2; in instance 4 as local 1.
	s3 := &instSigner{inner: inner, local: localID(5, 3, 7), inst: 3}
	v3 := &instVerifier{inner: scheme, n: 7, inst: 3}
	v4 := &instVerifier{inner: scheme, n: 7, inst: 4}

	msg := []byte("payload")
	tag := s3.Sign(msg)
	if !v3.Verify(s3.ID(), msg, tag) {
		t.Fatal("genuine instance signature rejected")
	}
	if v4.Verify(localID(5, 4, 7), msg, tag) {
		t.Fatal("cross-instance replay verified")
	}
	// And claiming a different local identity in the same instance fails.
	if v3.Verify(s3.ID()+1, msg, tag) {
		t.Fatal("wrong local identity verified")
	}
}

func TestVerifierRejectsOutOfRange(t *testing.T) {
	scheme := sig.NewHMAC(4, 1)
	v := &instVerifier{inner: scheme, n: 4, inst: 0}
	if v.Verify(ident.ProcID(9), []byte("m"), []byte("s")) {
		t.Fatal("out-of-range local id verified")
	}
	if v.Verify(ident.ProcID(-1), []byte("m"), []byte("s")) {
		t.Fatal("negative local id verified")
	}
}

func TestOwnInput(t *testing.T) {
	if OwnInput(0, 42) != 42 {
		t.Fatal("transmitter input not preserved")
	}
	if OwnInput(3, 42) != 1 || OwnInput(4, 42) != 0 {
		t.Fatal("derived inputs changed")
	}
}
