package dolevstrong_test

import (
	"context"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/dolevstrong"
)

func run(t *testing.T, n, tt int, v ident.Value, adv adversary.Adversary, faulty ident.Set) *core.Result {
	t.Helper()
	res, _, err := core.RunAndCheck(context.Background(), core.Config{
		Protocol: dolevstrong.Protocol{}, N: n, T: tt, Value: v,
		Adversary: adv, FaultyOverride: faulty, Seed: 31,
	})
	if err != nil {
		t.Fatalf("n=%d t=%d v=%v: %v", n, tt, v, err)
	}
	return res
}

func TestCheck(t *testing.T) {
	p := dolevstrong.Protocol{}
	if err := p.Check(3, 2); err == nil {
		t.Fatal("n < t+2 accepted")
	}
	if err := p.Check(1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	// Authenticated BA tolerates any t < n-1, including majorities.
	if err := p.Check(5, 3); err != nil {
		t.Fatalf("n=5 t=3 rejected: %v", err)
	}
}

func TestFaultFree(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{2, 0}, {4, 1}, {7, 3}, {12, 5}} {
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			run(t, tc.n, tc.t, v, nil, nil)
		}
	}
}

func TestByzantineMajorityOfRelays(t *testing.T) {
	// Authentication tolerates t ≥ n/2 as long as the transmitter is
	// correct... and even a faulty transmitter only forces agreement on
	// *some* common value. Here: 5 processors, 3 faults.
	n, tt := 5, 3
	run(t, n, tt, ident.V1, adversary.Silent{}, ident.NewSet(2, 3, 4))
}

func TestSplitBrainEveryPhaseBudget(t *testing.T) {
	for _, tc := range []struct{ n, t int }{{4, 1}, {7, 2}, {9, 4}} {
		adv := adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(tc.n / 2)}
		res, err := core.Run(context.Background(), core.Config{
			Protocol: dolevstrong.Protocol{}, N: tc.n, T: tc.t, Value: ident.V1, Adversary: adv, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		var first ident.Value
		seen := false
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if !d.Decided {
				t.Fatalf("n=%d: %v undecided", tc.n, id)
			}
			if !seen {
				first, seen = d.Value, true
			} else if d.Value != first {
				t.Fatalf("n=%d: disagreement %v vs %v", tc.n, d.Value, first)
			}
		}
		// With an equivocating transmitter every correct processor should
		// extract both values and fall to the default.
		if first != ident.V0 {
			t.Fatalf("n=%d: expected default 0 decision, got %v", tc.n, first)
		}
	}
}

func TestQuadraticMessageShape(t *testing.T) {
	// Fault-free value-v run: transmitter broadcasts (n-1), every other
	// processor relays the single value once to all n-1 peers — total
	// n(n-1).
	for _, n := range []int{4, 8, 12} {
		res := run(t, n, 2, ident.V1, nil, nil)
		want := n * (n - 1)
		if got := res.Sim.Report.MessagesCorrect; got != want {
			t.Fatalf("n=%d: %d msgs, want %d", n, got, want)
		}
	}
}

func TestGarbageResistance(t *testing.T) {
	for _, v := range []ident.Value{ident.V0, ident.V1} {
		res := run(t, 7, 2, v, adversary.Garbage{PerPhase: 6}, nil)
		for id, d := range res.Sim.Decisions {
			if res.Faulty.Has(id) {
				continue
			}
			if d.Value != v {
				t.Fatalf("%v decided %v, want %v", id, d.Value, v)
			}
		}
	}
}

func TestCrashAtEveryPhase(t *testing.T) {
	// Crashing at each phase boundary must never break agreement.
	n, tt := 7, 3
	for crashAt := 0; crashAt <= tt+1; crashAt++ {
		adv := adversary.Crash{CrashAfter: crashAt}
		for _, v := range []ident.Value{ident.V0, ident.V1} {
			run(t, n, tt, v, adv, nil)
		}
	}
}
