// Package dolevstrong implements the classical authenticated Byzantine
// Agreement algorithm of Dolev and Strong (the paper's reference [9]) as
// the baseline the information-exchange-optimal algorithms are compared
// against. It runs in t+1 phases and, as implemented (every processor
// relays each of at most two distinct values once to everybody), sends
// O(n²) messages carrying O(n²·t) signatures in the worst case.
//
//	Phase 1:      the transmitter signs and broadcasts its value.
//	Phase k:      a processor that extracted a new value v from a message
//	              carrying k-1 distinct signatures beginning with the
//	              transmitter's appends its own signature and broadcasts,
//	              provided it has extracted at most two values so far (two
//	              distinct extracted values already prove the transmitter
//	              faulty, so further relays cannot change any decision).
//	Decision:     if exactly one value was extracted, that value; else the
//	              default 0.
package dolevstrong

import (
	"fmt"

	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/sig"
	"byzex/internal/sim"
)

// Protocol is the Dolev–Strong baseline.
type Protocol struct{}

var _ protocol.Protocol = Protocol{}

// Name implements protocol.Protocol.
func (Protocol) Name() string { return "dolev-strong" }

// Check implements protocol.Protocol: authenticated BA needs n ≥ t+2 for
// agreement among at least two correct processors (and n ≥ 2 overall).
func (Protocol) Check(n, t int) error {
	if n < 2 || t < 0 || n < t+2 {
		return fmt.Errorf("%w: dolev-strong requires n ≥ max(2, t+2) (got n=%d t=%d)", protocol.ErrBadParams, n, t)
	}
	return nil
}

// Phases implements protocol.Protocol.
func (Protocol) Phases(_, t int) int { return t + 1 }

// NewNode implements protocol.Protocol.
func (Protocol) NewNode(cfg protocol.NodeConfig) (sim.Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &node{cfg: cfg, extracted: make(map[ident.Value]sig.Chain)}, nil
}

type node struct {
	cfg       protocol.NodeConfig
	extracted map[ident.Value]sig.Chain
	// relayQueue holds values extracted in the previous phase that still
	// need relaying with our signature appended.
	relayQueue []sig.SignedValue
}

var _ sim.Node = (*node)(nil)

// accept validates a phase-(k-1) message: value plus a chain of exactly k-1
// distinct signatures, the first by the transmitter, none by us.
func (n *node) accept(payload []byte, k int) (sig.SignedValue, bool) {
	sv, err := sig.UnmarshalSignedValue(payload)
	if err != nil {
		return sig.SignedValue{}, false
	}
	if len(sv.Chain) != k || !sv.Chain.Distinct() {
		return sig.SignedValue{}, false
	}
	if sv.Chain[0].Signer != n.cfg.Transmitter || sv.Chain.Has(n.cfg.ID) {
		return sig.SignedValue{}, false
	}
	if err := sv.Verify(n.cfg.Verifier); err != nil {
		return sig.SignedValue{}, false
	}
	return sv, true
}

func (n *node) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	phase := ctx.Phase()

	if n.cfg.IsTransmitter() {
		if phase == 1 {
			sv := sig.NewSignedValue(n.cfg.Signer, n.cfg.Value)
			if err := protocol.Broadcast(ctx, sv.Marshal(), sv.Chain); err != nil {
				return err
			}
			n.extracted[n.cfg.Value] = sv.Chain
		}
		return nil
	}

	// Extract new values from messages sent during the previous phase.
	for _, env := range inbox {
		sv, ok := n.accept(env.Payload, phase-1)
		if !ok {
			continue
		}
		if _, seen := n.extracted[sv.Value]; seen {
			continue
		}
		// Once two distinct values are extracted every correct processor's
		// decision is already forced to the default; cap storage at two and
		// relay at most two (the classical optimization).
		if len(n.extracted) >= 2 {
			continue
		}
		n.extracted[sv.Value] = sv.Chain
		n.relayQueue = append(n.relayQueue, sv)
	}

	// Relay newly extracted values with our signature, within the t+1
	// sending window.
	if phase <= ctx.T()+1 {
		for _, sv := range n.relayQueue {
			signed := sv.CoSign(n.cfg.Signer)
			if err := protocol.Broadcast(ctx, signed.Marshal(), signed.Chain); err != nil {
				return err
			}
		}
	}
	n.relayQueue = n.relayQueue[:0]
	return nil
}

func (n *node) Decide() (ident.Value, bool) {
	if n.cfg.IsTransmitter() {
		return n.cfg.Value, true
	}
	if len(n.extracted) == 1 {
		for v := range n.extracted {
			return v, true
		}
	}
	return ident.V0, true
}
