package dolevstrong_test

import (
	"context"
	"fmt"
	"testing"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/dolevstrong"
)

// TestExhaustiveFaultySubsets enumerates every faulty subset of size ≤ t in
// a small system, under both the silent and the split-brain-capable
// adversary, with both values. Dolev-Strong must satisfy agreement (and
// validity when the transmitter is correct) in every single combination.
func TestExhaustiveFaultySubsets(t *testing.T) {
	const n, tt = 5, 2
	for mask := 0; mask < (1 << n); mask++ {
		faulty := make(ident.Set)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				faulty.Add(ident.ProcID(i))
			}
		}
		if faulty.Len() > tt {
			continue
		}
		advs := []adversary.Adversary{adversary.Silent{}}
		if faulty.Has(0) {
			advs = append(advs, adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: n / 2})
		}
		for _, adv := range advs {
			for _, v := range []ident.Value{ident.V0, ident.V1} {
				res, err := core.Run(context.Background(), core.Config{
					Protocol: dolevstrong.Protocol{}, N: n, T: tt, Value: v,
					Adversary: adv, FaultyOverride: faulty, Seed: int64(mask),
				})
				if err != nil {
					t.Fatalf("mask=%b adv=%s v=%v: %v", mask, adv.Name(), v, err)
				}
				label := fmt.Sprintf("mask=%b adv=%s v=%v", mask, adv.Name(), v)
				var first ident.Value
				seen := false
				for id, d := range res.Sim.Decisions {
					if res.Faulty.Has(id) {
						continue
					}
					if !d.Decided {
						t.Fatalf("%s: %v undecided", label, id)
					}
					if !seen {
						first, seen = d.Value, true
					} else if d.Value != first {
						t.Fatalf("%s: disagreement", label)
					}
				}
				if !faulty.Has(0) && first != v {
					t.Fatalf("%s: validity violated", label)
				}
			}
		}
	}
}
