package grid_test

import (
	"testing"
	"testing/quick"

	"byzex/internal/grid"
)

func TestNewValidatesSquares(t *testing.T) {
	for _, n := range []int{1, 4, 9, 16, 144} {
		if _, err := grid.New(n); err != nil {
			t.Errorf("New(%d): %v", n, err)
		}
	}
	for _, n := range []int{0, 2, 3, 5, 8, 15, -4} {
		if _, err := grid.New(n); err == nil {
			t.Errorf("New(%d): accepted non-square", n)
		}
	}
}

func TestCoordinates(t *testing.T) {
	g, _ := grid.New(9)
	if g.Side() != 3 || g.N() != 9 {
		t.Fatal("dimensions wrong")
	}
	if g.Row(5) != 1 || g.Col(5) != 2 {
		t.Fatalf("coords of 5: (%d,%d)", g.Row(5), g.Col(5))
	}
	if g.Index(1, 2) != 5 {
		t.Fatal("index inverse wrong")
	}
}

func TestMates(t *testing.T) {
	g, _ := grid.New(9)
	row := g.RowMates(4) // center: row 1 = {3,4,5}
	if len(row) != 2 || row[0] != 3 || row[1] != 5 {
		t.Fatalf("row mates %v", row)
	}
	col := g.ColMates(4) // column 1 = {1,4,7}
	if len(col) != 2 || col[0] != 1 || col[1] != 7 {
		t.Fatalf("col mates %v", col)
	}
	if !g.SameRow(3, 5) || g.SameRow(3, 6) {
		t.Fatal("SameRow wrong")
	}
	if !g.SameCol(1, 7) || g.SameCol(1, 5) {
		t.Fatal("SameCol wrong")
	}
}

func TestQuickRowColPartition(t *testing.T) {
	// Property: row+col mates of any index cover exactly 2(m-1) distinct
	// indices, none equal to the index, and index/coordinate conversion
	// round-trips.
	f := func(mRaw, iRaw uint8) bool {
		m := int(mRaw)%12 + 1
		g, err := grid.New(m * m)
		if err != nil {
			return false
		}
		i := int(iRaw) % (m * m)
		if g.Index(g.Row(i), g.Col(i)) != i {
			return false
		}
		seen := map[int]bool{}
		for _, j := range append(g.RowMates(i), g.ColMates(i)...) {
			if j == i || seen[j] {
				return false
			}
			seen[j] = true
		}
		return len(seen) == 2*(m-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
