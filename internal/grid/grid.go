// Package grid provides √N × √N grid addressing over a group of N = m²
// processors, the communication structure of Algorithm 4: phase 1 exchanges
// along rows, phase 2 along columns, phase 3 along rows again.
package grid

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSquare indicates the group size is not a perfect square.
var ErrNotSquare = errors.New("grid: group size is not a perfect square")

// Grid maps between linear indices 0..m²-1 and (row, col) coordinates.
// Index i sits at row i/m, column i%m.
type Grid struct {
	m int
}

// New builds a grid over n = m² positions.
func New(n int) (Grid, error) {
	m := int(math.Sqrt(float64(n)))
	for ; m*m < n; m++ {
	}
	if m*m != n || n < 1 {
		return Grid{}, fmt.Errorf("%w: %d", ErrNotSquare, n)
	}
	return Grid{m: m}, nil
}

// Side returns m = √N.
func (g Grid) Side() int { return g.m }

// N returns the number of positions.
func (g Grid) N() int { return g.m * g.m }

// Row returns the row of index i.
func (g Grid) Row(i int) int { return i / g.m }

// Col returns the column of index i.
func (g Grid) Col(i int) int { return i % g.m }

// Index returns the linear index of (row, col).
func (g Grid) Index(row, col int) int { return row*g.m + col }

// RowMates returns the indices sharing index i's row, excluding i itself.
func (g Grid) RowMates(i int) []int {
	out := make([]int, 0, g.m-1)
	r := g.Row(i)
	for c := 0; c < g.m; c++ {
		if j := g.Index(r, c); j != i {
			out = append(out, j)
		}
	}
	return out
}

// ColMates returns the indices sharing index i's column, excluding i itself.
func (g Grid) ColMates(i int) []int {
	out := make([]int, 0, g.m-1)
	c := g.Col(i)
	for r := 0; r < g.m; r++ {
		if j := g.Index(r, c); j != i {
			out = append(out, j)
		}
	}
	return out
}

// SameRow reports whether indices i and j share a row.
func (g Grid) SameRow(i, j int) bool { return g.Row(i) == g.Row(j) }

// SameCol reports whether indices i and j share a column.
func (g Grid) SameCol(i, j int) bool { return g.Col(i) == g.Col(j) }
