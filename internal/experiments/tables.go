package experiments

import (
	"context"
	"fmt"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/lowerbound"
	"byzex/internal/metrics"
	"byzex/internal/protocol"
	"byzex/internal/protocols/alg1"
	"byzex/internal/protocols/alg2"
	"byzex/internal/protocols/alg3"
	"byzex/internal/protocols/alg4"
	"byzex/internal/protocols/alg5"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/protocols/lsp"
	"byzex/internal/protocols/phaseking"
	"byzex/internal/protocols/strawman"
	"byzex/internal/sig"
)

// E1Alg1 reproduces Theorem 3: Algorithm 1 uses t+2 phases and ≤ 2t²+2t
// messages for n = 2t+1, worst case over the adversary suite.
func E1Alg1(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E1",
		Title:   "Theorem 3 — Algorithm 1 (n=2t+1): messages ≤ 2t²+2t, phases = t+2",
		Columns: []string{"t", "n", "msgs(worst)", "bound 2t²+2t", "phases", "phase bound t+2"},
	}
	ts := []int{1, 2, 4, 8, 16, 32}
	type cell struct{ msgs, phases int }
	cells, err := sweep(ctx, len(ts), func(ctx context.Context, i int) (cell, error) {
		t := ts[i]
		msgs, _, phases, err := worstCase(ctx, alg1.Protocol{}, 2*t+1, t, 1)
		return cell{msgs, phases}, err
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t := ts[i]
		bound := core.Alg1MsgUpperBound(t)
		tbl.AddRow(t, 2*t+1, c.msgs, bound, c.phases, core.Alg1Phases(t))
		if c.msgs > bound {
			tbl.Violate("t=%d: %d msgs > %d", t, c.msgs, bound)
		}
		if c.phases != core.Alg1Phases(t) {
			tbl.Violate("t=%d: phases %d != %d", t, c.phases, core.Alg1Phases(t))
		}
	}
	return tbl, tbl.Err()
}

// E2Alg2 reproduces Theorem 4: Algorithm 2 uses 3t+3 phases, ≤ 5t²+5t
// messages, and leaves every correct processor with a ≥t-other-signature
// proof of the common value.
func E2Alg2(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E2",
		Title:   "Theorem 4 — Algorithm 2 (n=2t+1): messages ≤ 5t²+5t, phases = 3t+3, all hold proofs",
		Columns: []string{"t", "n", "msgs(worst)", "bound 5t²+5t", "phases", "proofs held", "proof sigs ≥"},
	}
	ts := []int{1, 2, 4, 8, 16}
	type cell struct{ msgs, phases, held, minSigs int }
	cells, err := sweep(ctx, len(ts), func(ctx context.Context, i int) (cell, error) {
		t := ts[i]
		n := 2*t + 1
		msgs, _, phases, err := worstCase(ctx, alg2.Protocol{}, n, t, 2)
		if err != nil {
			return cell{}, err
		}

		// Proof check on a fresh fault-free run.
		scheme := sig.NewHMAC(n, 99)
		res, _, err := core.RunAndCheck(ctx, core.Config{
			Protocol: alg2.Protocol{}, N: n, T: t, Value: ident.V1, Scheme: scheme,
		})
		if err != nil {
			return cell{}, err
		}
		held, minSigs := 0, -1
		for _, nd := range res.Nodes {
			ph, ok := nd.(alg2.ProofHolder)
			if !ok {
				continue
			}
			proof, has := ph.Proof()
			if !has {
				continue
			}
			if err := alg2.VerifyProof(proof, ident.Range(n), t, scheme); err != nil {
				continue
			}
			held++
			if d := proof.Chain.DistinctCount(); minSigs < 0 || d < minSigs {
				minSigs = d
			}
		}
		return cell{msgs, phases, held, minSigs}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		t := ts[i]
		n := 2*t + 1
		bound := core.Alg2MsgUpperBound(t)
		tbl.AddRow(t, n, c.msgs, bound, c.phases, fmt.Sprintf("%d/%d", c.held, n), c.minSigs)
		if c.msgs > bound {
			tbl.Violate("t=%d: %d msgs > %d", t, c.msgs, bound)
		}
		if c.held != n {
			tbl.Violate("t=%d: only %d/%d processors hold proofs", t, c.held, n)
		}
		if c.phases != core.Alg2Phases(t) {
			tbl.Violate("t=%d: phases %d != %d", t, c.phases, core.Alg2Phases(t))
		}
	}
	return tbl, tbl.Err()
}

// E3Alg3 reproduces Lemma 1 / Theorem 5: Algorithm 3's message count obeys
// 2n + 4tn/s + 3t²s across an s sweep; s = 4t gives O(n + t³).
func E3Alg3(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E3",
		Title:   "Lemma 1 / Theorem 5 — Algorithm 3: messages ≤ 2n+4tn/s+3t²s, phases = t+2s+3",
		Columns: []string{"n", "t", "s", "msgs(worst)", "bound", "phases", "phase bound"},
	}
	type cfg struct{ n, t, s int }
	var cases []cfg
	for _, s := range []int{1, 2, 4, 8, 16, 32} {
		cases = append(cases, cfg{256, 4, s})
	}
	cases = append(cases, cfg{1024, 8, 32}, cfg{2048, 4, 16}, cfg{512, 2, 8})
	type cell struct{ msgs, phases int }
	cells, err := sweep(ctx, len(cases), func(ctx context.Context, i int) (cell, error) {
		c := cases[i]
		msgs, _, phases, err := worstCase(ctx, alg3.Protocol{S: c.s}, c.n, c.t, 3)
		return cell{msgs, phases}, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range cells {
		c := cases[i]
		bound := core.Alg3MsgUpperBound(c.n, c.t, c.s)
		pb := core.Alg3Phases(c.t, c.s)
		tbl.AddRow(c.n, c.t, c.s, r.msgs, bound, r.phases, pb)
		if r.msgs > bound {
			tbl.Violate("n=%d t=%d s=%d: %d msgs > %d", c.n, c.t, c.s, r.msgs, bound)
		}
		if r.phases > pb {
			tbl.Violate("n=%d t=%d s=%d: phases %d > %d", c.n, c.t, c.s, r.phases, pb)
		}
	}
	return tbl, tbl.Err()
}

// E4Alg4 reproduces Theorem 6: the grid exchange sends ≤ 3(m-1)m² messages
// and at least N-2t processors succeed in mutually exchanging values.
func E4Alg4(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E4",
		Title:   "Theorem 6 — Algorithm 4 (N=m²): messages ≤ 3(m-1)m², ≥ N-2t mutual exchanges",
		Columns: []string{"m", "N", "t", "msgs", "bound 3(m-1)m²", "|P| measured", "N-2t"},
	}
	ms := []int{3, 4, 6, 8, 12, 16}
	type cell struct{ msgs, p int }
	cells, err := sweep(ctx, len(ms), func(ctx context.Context, i int) (cell, error) {
		m := ms[i]
		n := m * m
		t := m / 2
		faulty := make(ident.Set)
		for i := 0; i < t; i++ {
			// Spread faults across rows to exercise the row-quorum logic.
			faulty.Add(ident.ProcID(i*m + (i % m)))
		}
		scheme := sig.NewHMAC(n, 4)
		res, err := core.Run(ctx, core.Config{
			Protocol: alg4.Protocol{}, N: n, T: t, Value: ident.V0,
			Scheme: scheme, Adversary: adversary.Silent{}, FaultyOverride: faulty, Seed: 4,
		})
		if err != nil {
			return cell{}, err
		}
		// Measure the mutually-exchanged set: correct processors that
		// received the signed value of every correct processor whose row
		// quorum held.
		return cell{res.Sim.Report.MessagesCorrect, measureExchangeSet(res, n, m, faulty)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		m := ms[i]
		n, t := m*m, m/2
		bound := core.Alg4MsgUpperBound(m)
		tbl.AddRow(m, n, t, c.msgs, bound, c.p, n-2*t)
		if c.msgs > bound {
			tbl.Violate("m=%d: %d msgs > %d", m, c.msgs, bound)
		}
		if c.p < n-2*t {
			tbl.Violate("m=%d: |P| = %d < N-2t = %d", m, c.p, n-2*t)
		}
	}
	return tbl, tbl.Err()
}

// measureExchangeSet computes the largest candidate P from Lemma 2's
// construction (correct processors whose row has < m/2 faults) and verifies
// all pairs exchanged; it returns |P|.
func measureExchangeSet(res *core.Result, n, m int, faulty ident.Set) int {
	var candidates []ident.ProcID
	for i := 0; i < n; i++ {
		id := ident.ProcID(i)
		if faulty.Has(id) {
			continue
		}
		row := i / m
		rowFaults := 0
		for c := 0; c < m; c++ {
			if faulty.Has(ident.ProcID(row*m + c)) {
				rowFaults++
			}
		}
		if 2*rowFaults < m {
			candidates = append(candidates, id)
		}
	}
	// Verify mutual exchange within the candidate set.
	count := 0
	for _, p := range candidates {
		ex, ok := res.Nodes[p].(alg4.Exchanger)
		if !ok {
			continue
		}
		out := ex.Output()
		all := true
		for _, q := range candidates {
			if _, got := out[q]; !got {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return count
}

// E5Alg5 reproduces Lemma 5 / Theorem 7: Algorithm 5's message count is
// O(t² + nt/s) and O(n + t²) at s = t.
func E5Alg5(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E5",
		Title:   "Lemma 5 / Theorem 7 — Algorithm 5: messages = O(t²+nt/s), phases = O(t+s)",
		Columns: []string{"n", "t", "s", "msgs(worst)", "bound", "phases", "phase bound"},
	}
	type cfg struct{ n, t, s int }
	cases := []cfg{
		{64, 2, 2}, {256, 2, 2}, {1024, 2, 2},
		{64, 3, 3}, {256, 3, 3}, {1024, 3, 3},
		{256, 4, 4}, {512, 4, 4},
		{256, 4, 1}, {256, 4, 8},
	}
	type cell struct{ msgs, phases int }
	cells, err := sweep(ctx, len(cases), func(ctx context.Context, i int) (cell, error) {
		c := cases[i]
		msgs, _, phases, err := worstCase(ctx, alg5.Protocol{S: c.s}, c.n, c.t, 5)
		return cell{msgs, phases}, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range cells {
		c := cases[i]
		bound := core.Alg5MsgUpperBound(c.n, c.t, c.s)
		pb := core.Alg5Phases(c.t, c.s)
		tbl.AddRow(c.n, c.t, c.s, r.msgs, bound, r.phases, pb)
		if r.msgs > bound {
			tbl.Violate("n=%d t=%d s=%d: %d msgs > %d", c.n, c.t, c.s, r.msgs, bound)
		}
		if r.phases > pb {
			tbl.Violate("n=%d t=%d s=%d: phases %d > %d", c.n, c.t, c.s, r.phases, pb)
		}
	}
	return tbl, tbl.Err()
}

// E6Theorem1 reproduces Theorem 1: correct protocols exchange ≥ t+1
// signatures per processor (min |A(p)|) and ≥ n(t+1)/4 signatures total in
// a fault-free history, while the replay construction breaks a protocol
// that undercuts the bound.
func E6Theorem1(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E6",
		Title:   "Theorem 1 — Ω(nt) signatures: audits and the split-brain replay attack",
		Columns: []string{"protocol", "n", "t", "min|A(p)|", "t+1", "sigs max(H,G)", "bound n(t+1)/4", "replay attack"},
	}
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 9, 4},
		{alg1.Protocol{}, 33, 16},
		{alg2.Protocol{}, 9, 4},
		{dolevstrong.Protocol{}, 16, 4},
		{alg3.Protocol{S: 8}, 64, 4},
		{alg5.Protocol{S: 3}, 64, 3},
	}
	type cell struct {
		audit    *lowerbound.SigAudit
		most     int
		attacked bool // replay attack succeeded against the protocol
	}
	cells, err := sweep(ctx, len(cases), func(ctx context.Context, i int) (cell, error) {
		c := cases[i]
		audit, err := lowerbound.AuditSignatures(ctx, c.p, c.n, c.t, nil)
		if err != nil {
			return cell{}, err
		}
		most := audit.HSignatures
		if audit.GSignatures > most {
			most = audit.GSignatures
		}
		_, attErr := lowerbound.ReplayAttack(ctx, c.p, c.n, c.t, nil)
		return cell{audit: audit, most: most, attacked: attErr == nil}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range cells {
		c := cases[i]
		status := "not applicable (bound respected)"
		if r.attacked {
			status = "BROKE PROTOCOL"
			tbl.Violate("%s: replay attack applied to a correct protocol", c.p.Name())
		}
		tbl.AddRow(c.p.Name(), c.n, c.t, r.audit.MinAPSize, c.t+1, r.most, r.audit.Bound, status)
		if !r.audit.Satisfied() {
			tbl.Violate("%s: min|A(p)| %d < %d", c.p.Name(), r.audit.MinAPSize, c.t+1)
		}
		if r.most < r.audit.Bound {
			tbl.Violate("%s: %d sigs < bound %d", c.p.Name(), r.most, r.audit.Bound)
		}
	}
	// The strawman undercuts the bound; the attack must break it.
	strawCases := []struct{ n, t int }{{9, 3}, {16, 4}}
	type strawCell struct {
		audit     *lowerbound.SigAudit
		most      int
		violation string
		broke     bool
	}
	strawCells, err := sweep(ctx, len(strawCases), func(ctx context.Context, i int) (strawCell, error) {
		c := strawCases[i]
		out, err := lowerbound.ReplayAttack(ctx, strawman.Broadcast{}, c.n, c.t, nil)
		if err != nil {
			return strawCell{}, err
		}
		audit, err := lowerbound.AuditSignatures(ctx, strawman.Broadcast{}, c.n, c.t, nil)
		if err != nil {
			return strawCell{}, err
		}
		most := audit.HSignatures
		if audit.GSignatures > most {
			most = audit.GSignatures
		}
		return strawCell{audit: audit, most: most, violation: fmt.Sprint(out.Violation), broke: out.Broke()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range strawCells {
		c := strawCases[i]
		status := "survived (UNEXPECTED)"
		if r.broke {
			status = "broken: " + r.violation
		} else {
			tbl.Violate("strawman survived replay at n=%d t=%d", c.n, c.t)
		}
		tbl.AddRow("strawman-broadcast", c.n, c.t, r.audit.MinAPSize, c.t+1, r.most, r.audit.Bound, status)
	}
	return tbl, tbl.Err()
}

// E7Unauth reproduces Corollary 1: the unauthenticated baselines' message
// counts sit above n(t+1)/4.
func E7Unauth(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E7",
		Title:   "Corollary 1 — unauthenticated messages ≥ n(t+1)/4 (LSP and Phase King baselines)",
		Columns: []string{"protocol", "n", "t", "msgs(worst)", "lower bound n(t+1)/4", "phases"},
	}
	type row struct {
		p    protocol.Protocol
		n, t int
	}
	rows := []row{
		{lsp.Protocol{}, 4, 1}, {lsp.Protocol{}, 7, 2}, {lsp.Protocol{}, 10, 3}, {lsp.Protocol{}, 13, 4},
		{phaseking.Protocol{}, 5, 1}, {phaseking.Protocol{}, 9, 2}, {phaseking.Protocol{}, 13, 3}, {phaseking.Protocol{}, 21, 5},
	}
	type cell struct{ msgs, phases int }
	cells, err := sweep(ctx, len(rows), func(ctx context.Context, i int) (cell, error) {
		c := rows[i]
		msgs, _, phases, err := worstCase(ctx, c.p, c.n, c.t, 7)
		return cell{msgs, phases}, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range cells {
		c := rows[i]
		bound := core.MsgLowerBoundUnauth(c.n, c.t)
		tbl.AddRow(c.p.Name(), c.n, c.t, r.msgs, bound, r.phases)
		if r.msgs < bound {
			tbl.Violate("%s n=%d t=%d: %d msgs < lower bound %d", c.p.Name(), c.n, c.t, r.msgs, bound)
		}
	}
	return tbl, tbl.Err()
}

// E8Theorem2 reproduces Theorem 2: under the B-set starvation adversary the
// correct processors still push ⌈1+t/2⌉ messages into every starved member,
// and totals stay above max{(n-1)/2, (1+t/2)²}; the omission construction
// breaks the strawman.
func E8Theorem2(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E8",
		Title:   "Theorem 2 — Ω(n+t²) messages: starvation audit and omission attack",
		Columns: []string{"protocol", "n", "t", "min msgs into B", "need ⌈1+t/2⌉", "total msgs", "bound max{(n-1)/2,(1+t/2)²}"},
	}
	cases := []struct {
		p    protocol.Protocol
		n, t int
	}{
		{alg1.Protocol{}, 9, 4},
		{alg1.Protocol{}, 17, 8},
		{alg2.Protocol{}, 9, 4},
		{dolevstrong.Protocol{}, 16, 4},
	}
	// The starvation audits and the omission attack are all independent
	// runs; the attack is scheduled as one more job alongside the sweep.
	var out *lowerbound.AttackOutcome
	audits := make([]*lowerbound.MsgAudit, len(cases))
	work := make([]func(ctx context.Context) error, 0, len(cases)+1)
	for i := range cases {
		i := i
		work = append(work, func(ctx context.Context) error {
			audit, err := lowerbound.StarvationAudit(ctx, cases[i].p, cases[i].n, cases[i].t, nil)
			audits[i] = audit
			return err
		})
	}
	work = append(work, func(ctx context.Context) error {
		var err error
		out, err = lowerbound.OmissionAttack(ctx, strawman.Broadcast{}, 8, 2, nil)
		return err
	})
	if err := jobs(ctx, work...); err != nil {
		return nil, err
	}
	for i, audit := range audits {
		c := cases[i]
		tbl.AddRow(c.p.Name(), c.n, c.t, audit.MinReceived, audit.RequiredPerMember, audit.TotalMessages, audit.Bound)
		if !audit.Satisfied() {
			tbl.Violate("%s: starved member got %d < %d", c.p.Name(), audit.MinReceived, audit.RequiredPerMember)
		}
		if audit.TotalMessages < audit.Bound {
			tbl.Violate("%s: total %d < bound %d", c.p.Name(), audit.TotalMessages, audit.Bound)
		}
	}
	status := "survived (UNEXPECTED)"
	if out.Broke() {
		status = fmt.Sprintf("broken: %v", out.Violation)
	} else {
		tbl.Violate("strawman survived omission attack")
	}
	tbl.AddRow("strawman-broadcast", 8, 2, 0, 2, "-", status)
	return tbl, tbl.Err()
}

// E9Tradeoff reproduces the introduction's trade-off: for n ≫ t, Algorithm 3
// with s = ⌈t/(2α)⌉ gives ≈ t+3+t/α phases and O(αn) messages.
func E9Tradeoff(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E9",
		Title:   "Intro trade-off — t+3+t/α phases vs O(αn) messages (Algorithm 3, s=⌈t/2α⌉)",
		Columns: []string{"α", "n", "t", "s", "msgs(worst)", "msgs/n", "phases", "paper phases t+3+t/α"},
	}
	n, t := 2048, 8
	alphas := []int{1, 2, 4, 8}
	type cell struct{ msgs, phases int }
	cells, err := sweep(ctx, len(alphas), func(ctx context.Context, i int) (cell, error) {
		s := (t + 2*alphas[i] - 1) / (2 * alphas[i])
		msgs, _, phases, err := worstCase(ctx, alg3.Protocol{S: s}, n, t, 9)
		return cell{msgs, phases}, err
	})
	if err != nil {
		return nil, err
	}
	for i, r := range cells {
		alpha := alphas[i]
		s := (t + 2*alpha - 1) / (2 * alpha)
		ratio := float64(r.msgs) / float64(n)
		tbl.AddRow(alpha, n, t, s, r.msgs, fmt.Sprintf("%.1f", ratio), r.phases, core.TradeoffPhases(t, alpha))
		if r.msgs > core.Alg3MsgUpperBound(n, t, s) {
			tbl.Violate("α=%d: %d msgs > Lemma 1 bound", alpha, r.msgs)
		}
	}
	return tbl, tbl.Err()
}

// E10Baselines is the head-to-head comparison motivating the paper: the
// message-optimal algorithms against the Dolev-Strong baseline.
func E10Baselines(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E10",
		Title:   "Baseline comparison — messages/signatures/phases across algorithms",
		Columns: []string{"n", "t", "protocol", "msgs(worst)", "sigs(worst)", "phases"},
	}
	type cfg struct{ n, t int }
	cases := []cfg{{25, 2}, {64, 3}, {256, 4}, {1024, 4}}
	protosFor := func(c cfg) []protocol.Protocol {
		return []protocol.Protocol{
			dolevstrong.Protocol{},
			alg3.Protocol{S: 4 * c.t},
			alg5.Protocol{S: c.t},
		}
	}
	// Flatten to one job per (case, protocol) cell.
	const perCase = 3
	type cell struct{ msgs, sigs, phases int }
	cells, err := sweep(ctx, len(cases)*perCase, func(ctx context.Context, i int) (cell, error) {
		c := cases[i/perCase]
		p := protosFor(c)[i%perCase]
		msgs, sigs, phases, err := worstCase(ctx, p, c.n, c.t, 10)
		return cell{msgs, sigs, phases}, err
	})
	if err != nil {
		return nil, err
	}
	for ci, c := range cases {
		var dsMsgs, alg5Msgs int
		for pi, p := range protosFor(c) {
			r := cells[ci*perCase+pi]
			tbl.AddRow(c.n, c.t, p.Name(), r.msgs, r.sigs, r.phases)
			switch p.(type) {
			case dolevstrong.Protocol:
				dsMsgs = r.msgs
			case alg5.Protocol:
				alg5Msgs = r.msgs
			}
		}
		// The paper's headline: for n ≫ t the optimal algorithm sends far
		// fewer messages than the O(n²)-message baseline.
		if c.n >= 256 && alg5Msgs >= dsMsgs {
			tbl.Violate("n=%d t=%d: alg5 (%d) not below dolev-strong (%d)", c.n, c.t, alg5Msgs, dsMsgs)
		}
	}
	return tbl, tbl.Err()
}

// E11Ablations quantifies the design choices DESIGN.md calls out:
// Algorithm 5's proof-of-work gating (ungated blocks re-activate every
// subtree), and the §5 relay exchange vs the Theorem 6 grid across the
// t ≈ √N crossover.
func E11Ablations(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E11",
		Title:   "Ablations — proof-of-work gating; relay (Θ(Nt)) vs grid (O(N^1.5)) exchange",
		Columns: []string{"ablation", "config", "msgs", "comparator", "msgs", "finding"},
	}
	// (a) Algorithm 5 with and without the PoW gate; (b) relay vs grid
	// exchange across the crossover. Every run is independent, so the gate
	// pair and the per-crossover-point run pairs all go on the pool at once.
	const n, t, s = 200, 3, 3
	var gated, ungated int
	exchangeMsgs := func(ctx context.Context, p protocol.Protocol, nn, tt int) (int, error) {
		res, err := core.Run(ctx, core.Config{Protocol: p, N: nn, T: tt, Value: ident.V0, Seed: 11})
		if err != nil {
			return 0, err
		}
		return res.Sim.Report.MessagesCorrect, nil
	}
	crossover := []struct {
		m, t     int
		gridWins bool
	}{
		{8, 2, false}, {8, 16, true}, {16, 4, false}, {16, 32, true},
	}
	gridMsgs := make([]int, len(crossover))
	relayMsgs := make([]int, len(crossover))
	work := []func(ctx context.Context) error{
		func(ctx context.Context) error {
			var err error
			gated, _, _, err = worstCase(ctx, alg5.Protocol{S: s}, n, t, 11)
			return err
		},
		func(ctx context.Context) error {
			var err error
			ungated, _, _, err = worstCase(ctx, alg5.Protocol{S: s, DisablePoW: true}, n, t, 11)
			return err
		},
	}
	for i := range crossover {
		i := i
		work = append(work, func(ctx context.Context) error {
			nn := crossover[i].m * crossover[i].m
			var err error
			if gridMsgs[i], err = exchangeMsgs(ctx, alg4.Protocol{}, nn, crossover[i].t); err != nil {
				return err
			}
			relayMsgs[i], err = exchangeMsgs(ctx, alg4.RelayProtocol{}, nn, crossover[i].t)
			return err
		})
	}
	if err := jobs(ctx, work...); err != nil {
		return nil, err
	}
	tbl.AddRow("alg5 PoW gate", fmt.Sprintf("n=%d t=%d s=%d", n, t, s),
		gated, "gate disabled", ungated,
		fmt.Sprintf("gating saves %.1fx messages", float64(ungated)/float64(gated)))
	if ungated <= gated {
		tbl.Violate("disabling the PoW gate did not cost messages (%d vs %d)", ungated, gated)
	}
	if gated > core.Alg5MsgUpperBound(n, t, s) {
		tbl.Violate("gated alg5 above its bound")
	}

	// (b) Relay vs grid exchange across the crossover.
	for i, c := range crossover {
		nn := c.m * c.m
		winner := "relay"
		if gridMsgs[i] < relayMsgs[i] {
			winner = "grid"
		}
		tbl.AddRow("exchange", fmt.Sprintf("N=%d t=%d", nn, c.t),
			gridMsgs[i], "relay", relayMsgs[i], winner+" wins")
		if (gridMsgs[i] < relayMsgs[i]) != c.gridWins {
			tbl.Violate("N=%d t=%d: crossover on the wrong side", nn, c.t)
		}
	}
	return tbl, tbl.Err()
}

// E12MessageSize quantifies the paper's §6 remark that the O(n+t²)
// algorithm "requires sending long messages": per protocol, the largest
// single message and the total byte volume at a fixed (n, t). Fewer
// messages are paid for with heavier ones (signature chains and
// proof-of-work strings).
func E12MessageSize(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E12",
		Title:   "§6 remark — message sizes: fewer messages cost longer messages",
		Columns: []string{"protocol", "n", "t", "msgs", "max msg bytes", "total bytes", "bytes/msg"},
	}
	const n, t = 256, 4
	protos := []protocol.Protocol{
		dolevstrong.Protocol{},
		alg3.Protocol{S: 4 * t},
		alg5.Protocol{S: t},
	}
	reports, err := sweep(ctx, len(protos), func(ctx context.Context, i int) (metrics.Report, error) {
		res, _, err := core.RunAndCheck(ctx, core.Config{
			Protocol: protos[i], N: n, T: t, Value: ident.V1, Seed: 12,
		})
		if err != nil {
			return metrics.Report{}, err
		}
		return res.Sim.Report, nil
	})
	if err != nil {
		return nil, err
	}
	for i, p := range protos {
		r := reports[i]
		avg := 0
		if r.MessagesCorrect > 0 {
			avg = r.BytesCorrect / r.MessagesCorrect
		}
		tbl.AddRow(p.Name(), n, t, r.MessagesCorrect, r.MaxMessageBytes, r.BytesCorrect, avg)
	}
	return tbl, tbl.Err()
}

// E13Alg5Breakdown decomposes Algorithm 5's message budget by schedule
// stage: the Algorithm 2 core, the fan-out, each tree block (activation +
// walk + report + Algorithm 4 exchange), and the block-0 direct sends —
// fault-free vs. a faulty coalition of passive roots, showing where the
// adversary forces extra traffic.
func E13Alg5Breakdown(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E13",
		Title:   "Algorithm 5 message budget by stage (n=200, t=3, s=3)",
		Columns: []string{"stage", "phases", "msgs fault-free", "msgs w/ faulty roots"},
	}
	const n, t, s = 200, 3, 3
	proto := alg5.Protocol{S: s}

	perSegment := func(ctx context.Context, adv adversary.Adversary, faulty ident.Set) (map[string]int, error) {
		res, err := core.Run(ctx, core.Config{
			Protocol: proto, N: n, T: t, Value: ident.V1,
			Adversary: adv, FaultyOverride: faulty, Seed: 13,
		})
		if err != nil {
			return nil, err
		}
		if agErr := checkAgreementOnly(res, ident.V1); agErr != nil {
			return nil, agErr
		}
		out := make(map[string]int)
		for _, seg := range proto.Segments(n, t) {
			total := 0
			for ph := seg.First; ph <= seg.Last && ph < len(res.Sim.Report.PerPhase); ph++ {
				total += res.Sim.Report.PerPhase[ph].MessagesCorrect
			}
			out[seg.Name] = total
		}
		return out, nil
	}

	// The clean run, the faulty-roots run and the sanity re-run are
	// independent; overlap them on the pool.
	var (
		clean, dirty map[string]int
		runTotal     int
	)
	err := jobs(ctx,
		func(ctx context.Context) error {
			var err error
			clean, err = perSegment(ctx, nil, nil)
			return err
		},
		func(ctx context.Context) error {
			// α = 25 for t=3: passives start at 25; corrupt three tree roots.
			var err error
			dirty, err = perSegment(ctx, adversary.Silent{}, ident.NewSet(25, 28, 31))
			return err
		},
		func(ctx context.Context) error {
			res, err := core.Run(ctx, core.Config{Protocol: proto, N: n, T: t, Value: ident.V1, Seed: 13})
			if err != nil {
				return err
			}
			runTotal = res.Sim.Report.MessagesCorrect
			return nil
		},
	)
	if err != nil {
		return nil, err
	}
	for _, seg := range proto.Segments(n, t) {
		span := fmt.Sprintf("%d..%d", seg.First, seg.Last)
		tbl.AddRow(seg.Name, span, clean[seg.Name], dirty[seg.Name])
	}
	// Sanity: the per-stage totals must add up to the run totals.
	sum := 0
	for _, v := range clean {
		sum += v
	}
	if sum != runTotal {
		tbl.Violate("stage totals %d != run total %d", sum, runTotal)
	}
	return tbl, tbl.Err()
}

// E14Scaling regenerates the scaling figure a modern evaluation would
// plot: messages versus n at fixed t for the baseline and the two optimal
// algorithms. The reproducible claim is the *shape*: Dolev-Strong's
// per-processor cost grows linearly with n (total Θ(n²)), while Algorithms
// 3 and 5 stay at a constant number of messages per processor (total
// O(n + t³) / O(n + t²)).
func E14Scaling(ctx context.Context) (*Table, error) {
	tbl := &Table{
		ID:      "E14",
		Title:   "Scaling figure — messages vs n at t=4: Θ(n²) baseline vs O(n) optimal algorithms",
		Columns: []string{"n", "dolev-strong", "ds msgs/n", "alg3(s=16)", "alg3 msgs/n", "alg5(s=4)", "alg5 msgs/n"},
	}
	const t = 4
	type point struct{ ds, a3, a5 int }
	var firstRatioA3, lastRatioA3 float64
	var firstRatioDS, lastRatioDS float64
	ns := []int{64, 128, 256, 512, 1024}
	// One sweep job per (n, protocol) point — 15 independent runs.
	protosFor := func() []protocol.Protocol {
		return []protocol.Protocol{dolevstrong.Protocol{}, alg3.Protocol{S: 16}, alg5.Protocol{S: 4}}
	}
	const perN = 3
	msgs, err := sweep(ctx, len(ns)*perN, func(ctx context.Context, i int) (int, error) {
		n, p := ns[i/perN], protosFor()[i%perN]
		res, _, err := core.RunAndCheck(ctx, core.Config{
			Protocol: p, N: n, T: t, Value: ident.V1, Seed: 14,
		})
		if err != nil {
			return 0, err
		}
		return res.Sim.Report.MessagesCorrect, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range ns {
		pt := point{ds: msgs[i*perN], a3: msgs[i*perN+1], a5: msgs[i*perN+2]}
		rds := float64(pt.ds) / float64(n)
		ra3 := float64(pt.a3) / float64(n)
		ra5 := float64(pt.a5) / float64(n)
		tbl.AddRow(n, pt.ds, fmt.Sprintf("%.1f", rds), pt.a3, fmt.Sprintf("%.2f", ra3), pt.a5, fmt.Sprintf("%.2f", ra5))
		if i == 0 {
			firstRatioA3, firstRatioDS = ra3, rds
		}
		if i == len(ns)-1 {
			lastRatioA3, lastRatioDS = ra3, rds
		}
	}
	// Shape checks: the baseline's per-processor cost must grow ~linearly
	// (≥ 8× over a 16× n range), the optimal algorithms' must stay within a
	// small constant factor.
	if lastRatioDS < 8*firstRatioDS {
		tbl.Violate("dolev-strong per-processor cost did not scale with n (%f -> %f)", firstRatioDS, lastRatioDS)
	}
	if lastRatioA3 > 3*firstRatioA3 {
		tbl.Violate("alg3 per-processor cost grew with n (%f -> %f)", firstRatioA3, lastRatioA3)
	}
	return tbl, tbl.Err()
}

// All runs every experiment in order.
func All(ctx context.Context) ([]*Table, error) {
	funcs := []func(context.Context) (*Table, error){
		E1Alg1, E2Alg2, E3Alg3, E4Alg4, E5Alg5,
		E6Theorem1, E7Unauth, E8Theorem2, E9Tradeoff, E10Baselines, E11Ablations, E12MessageSize, E13Alg5Breakdown, E14Scaling,
	}
	out := make([]*Table, 0, len(funcs))
	for _, f := range funcs {
		tbl, err := f(ctx)
		if tbl != nil {
			out = append(out, tbl)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
