package experiments_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"byzex/internal/experiments"
	"byzex/internal/trace"
)

// The experiment functions assert their own bounds internally (returning an
// error on any violation), so the tests here simply execute them. The
// heavier sweeps run under -short via the lighter members only.

func TestTableRendering(t *testing.T) {
	tbl := &experiments.Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "bb"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow(22, "yyy")
	out := tbl.Render()
	if !strings.Contains(out, "EX — demo") || !strings.Contains(out, "22") {
		t.Fatalf("render output:\n%s", out)
	}
	if tbl.Err() != nil {
		t.Fatal("clean table reported error")
	}
	tbl.Violate("bad %d", 7)
	if tbl.Err() == nil || !strings.Contains(tbl.Err().Error(), "bad 7") {
		t.Fatal("violation not propagated")
	}
}

func TestE1(t *testing.T) {
	if _, err := experiments.E1Alg1(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE2(t *testing.T) {
	if _, err := experiments.E2Alg2(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE4(t *testing.T) {
	if _, err := experiments.E4Alg4(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE6(t *testing.T) {
	if _, err := experiments.E6Theorem1(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE7(t *testing.T) {
	if _, err := experiments.E7Unauth(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE8(t *testing.T) {
	if _, err := experiments.E8Theorem2(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestParallelDeterminism is the tentpole acceptance check: rendering the
// same experiments at parallelism 1 and 8 must produce byte-identical
// tables (rows are emitted in submission order after the sweep completes).
func TestParallelDeterminism(t *testing.T) {
	defer experiments.SetParallelism(0)
	defer experiments.SetTrace(nil)
	funcs := []func(context.Context) (*experiments.Table, error){
		experiments.E1Alg1, experiments.E2Alg2, experiments.E4Alg4, experiments.E6Theorem1,
		experiments.E7Unauth, experiments.E8Theorem2,
	}
	if !testing.Short() {
		funcs = append(funcs, experiments.E12MessageSize, experiments.E13Alg5Breakdown)
	}
	// Each worker records into a private per-cell buffer and the buffers are
	// merged in cell order, so both the rendered tables AND the merged JSONL
	// trace must be byte-identical at any parallelism level. This test runs
	// under -race in `make check`, so it also proves the per-worker sink
	// plumbing is race-free.
	render := func(par int) (string, string) {
		experiments.SetParallelism(par)
		if got := experiments.Parallelism(); got != par {
			t.Fatalf("Parallelism() = %d after SetParallelism(%d)", got, par)
		}
		var traceOut bytes.Buffer
		sink := trace.NewJSONL(&traceOut)
		experiments.SetTrace(sink)
		var b strings.Builder
		for _, f := range funcs {
			tbl, err := f(context.Background())
			if err != nil {
				t.Fatalf("parallel=%d: %v", par, err)
			}
			b.WriteString(tbl.Render())
			b.WriteString(tbl.CSV())
		}
		if err := sink.Flush(); err != nil {
			t.Fatalf("parallel=%d: flushing trace: %v", par, err)
		}
		return b.String(), traceOut.String()
	}
	serial, serialTrace := render(1)
	parallel, parallelTrace := render(8)
	if serial != parallel {
		t.Fatal("tables differ between parallelism 1 and 8")
	}
	if serialTrace == "" {
		t.Fatal("no trace events captured from the sweeps")
	}
	if serialTrace != parallelTrace {
		t.Fatal("merged traces differ between parallelism 1 and 8")
	}
	if _, err := trace.ReadJSONL(strings.NewReader(serialTrace)); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
}

func TestHeavySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweeps skipped in -short mode")
	}
	for _, f := range []func(context.Context) (*experiments.Table, error){
		experiments.E3Alg3, experiments.E5Alg5, experiments.E9Tradeoff, experiments.E10Baselines,
		experiments.E11Ablations, experiments.E12MessageSize, experiments.E13Alg5Breakdown, experiments.E14Scaling,
	} {
		if _, err := f(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
