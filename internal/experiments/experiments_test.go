package experiments_test

import (
	"context"
	"strings"
	"testing"

	"byzex/internal/experiments"
)

// The experiment functions assert their own bounds internally (returning an
// error on any violation), so the tests here simply execute them. The
// heavier sweeps run under -short via the lighter members only.

func TestTableRendering(t *testing.T) {
	tbl := &experiments.Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "bb"},
	}
	tbl.AddRow(1, "x")
	tbl.AddRow(22, "yyy")
	out := tbl.Render()
	if !strings.Contains(out, "EX — demo") || !strings.Contains(out, "22") {
		t.Fatalf("render output:\n%s", out)
	}
	if tbl.Err() != nil {
		t.Fatal("clean table reported error")
	}
	tbl.Violate("bad %d", 7)
	if tbl.Err() == nil || !strings.Contains(tbl.Err().Error(), "bad 7") {
		t.Fatal("violation not propagated")
	}
}

func TestE1(t *testing.T) {
	if _, err := experiments.E1Alg1(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE2(t *testing.T) {
	if _, err := experiments.E2Alg2(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE4(t *testing.T) {
	if _, err := experiments.E4Alg4(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE6(t *testing.T) {
	if _, err := experiments.E6Theorem1(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE7(t *testing.T) {
	if _, err := experiments.E7Unauth(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestE8(t *testing.T) {
	if _, err := experiments.E8Theorem2(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestHeavySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy sweeps skipped in -short mode")
	}
	for _, f := range []func(context.Context) (*experiments.Table, error){
		experiments.E3Alg3, experiments.E5Alg5, experiments.E9Tradeoff, experiments.E10Baselines,
		experiments.E11Ablations, experiments.E12MessageSize, experiments.E13Alg5Breakdown, experiments.E14Scaling,
	} {
		if _, err := f(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}
