// Package experiments regenerates the paper's evaluation: one table per
// theorem (the paper is theoretical, so its "tables and figures" are the
// bounds of Theorems 1-7 and the introduction's phase/message trade-off).
// Each experiment runs the relevant algorithm across parameter sweeps and
// adversaries, reports measured worst-case counts next to the paper's
// closed-form bound, and returns an error if any bound is violated.
//
// The experiment IDs E1..E10 are indexed in DESIGN.md and the results are
// recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"

	"byzex/internal/adversary"
	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocol"
	"byzex/internal/runner"
	"byzex/internal/trace"
)

// pool executes the E-table sweeps. Every cell of every sweep is an
// independent deterministic run, and rows are emitted only after a sweep
// completes, in submission order — so the rendered tables are byte-identical
// at any parallelism level.
var pool atomic.Pointer[runner.Pool]

func init() { pool.Store(runner.New(0)) }

// SetParallelism bounds how many runs the experiment sweeps execute
// concurrently; n < 1 selects GOMAXPROCS. cmd/baexp wires its -parallel
// flag here.
func SetParallelism(n int) { pool.Store(runner.New(n)) }

// Parallelism reports the current sweep concurrency bound.
func Parallelism() int { return pool.Load().Workers() }

// sinkBox wraps the experiment-wide trace sink for atomic swapping (an
// interface value cannot be stored in an atomic.Pointer directly).
type sinkBox struct{ s trace.Sink }

var traceDst atomic.Pointer[sinkBox]

// SetTrace routes execution traces from every run inside the experiment
// sweeps to s (nil disables). Each sweep cell records into a private
// trace.Buffer carried by its context — core.Run picks it up via
// trace.FromContext — and the buffers are drained into s in cell-submission
// order after the sweep joins. The merged stream is therefore
// byte-identical at any parallelism level, and s itself is only ever
// emitted to from one goroutine at a time.
func SetTrace(s trace.Sink) { traceDst.Store(&sinkBox{s: s}) }

func traceSink() trace.Sink {
	if b := traceDst.Load(); b != nil {
		return b.s
	}
	return nil
}

// sweep runs fn over n independent sweep cells on the experiment pool,
// returning the results in cell order. When an experiment trace sink is
// installed, each cell's events are buffered and merged in cell order.
func sweep[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	sink := traceSink()
	if sink == nil {
		return runner.Map(ctx, pool.Load(), n, fn)
	}
	bufs := make([]*trace.Buffer, n)
	for i := range bufs {
		bufs[i] = trace.NewBuffer()
	}
	out, err := runner.Map(ctx, pool.Load(), n, func(ctx context.Context, i int) (T, error) {
		return fn(trace.NewContext(ctx, bufs[i]), i)
	})
	for _, b := range bufs {
		b.DrainTo(sink)
	}
	return out, err
}

// jobs runs heterogeneous independent steps on the experiment pool, with
// the same per-step trace buffering as sweep.
func jobs(ctx context.Context, fns ...func(ctx context.Context) error) error {
	sink := traceSink()
	if sink == nil {
		return runner.Run(ctx, pool.Load(), fns...)
	}
	bufs := make([]*trace.Buffer, len(fns))
	wrapped := make([]func(ctx context.Context) error, len(fns))
	for i, fn := range fns {
		i, fn := i, fn
		bufs[i] = trace.NewBuffer()
		wrapped[i] = func(ctx context.Context) error {
			return fn(trace.NewContext(ctx, bufs[i]))
		}
	}
	err := runner.Run(ctx, pool.Load(), wrapped...)
	for _, b := range bufs {
		b.DrainTo(sink)
	}
	return err
}

// Table is one regenerated evaluation table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Violations collects bound violations discovered while running (empty
	// for a successful reproduction).
	Violations []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.Rows = append(t.Rows, row)
}

// Violate records a bound violation.
func (t *Table) Violate(format string, args ...interface{}) {
	t.Violations = append(t.Violations, fmt.Sprintf(format, args...))
}

// Err returns an error summarizing violations, or nil.
func (t *Table) Err() error {
	if len(t.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("experiment %s: %s", t.ID, strings.Join(t.Violations, "; "))
}

// CSV renders the table as RFC-4180-ish CSV (no quoting needed: cells are
// numbers, identifiers and short phrases without commas by construction).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		cleaned := make([]string, len(row))
		for i, cell := range row {
			cleaned[i] = strings.ReplaceAll(cell, ",", ";")
		}
		b.WriteString(strings.Join(cleaned, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Render prints the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%-*s  ", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range t.Columns {
		b.WriteString(strings.Repeat("-", widths[i]))
		b.WriteString("  ")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	for _, v := range t.Violations {
		fmt.Fprintf(&b, "VIOLATION: %s\n", v)
	}
	return b.String()
}

// worstCase runs the protocol under a suite of adversaries (both fault-free
// values, split-brain transmitter, silent and crashing coalitions) and
// returns the maximum message count by correct processors, the maximum
// signature count, and the phase schedule. Agreement is checked on every
// run (condition (i) always; condition (ii) when the transmitter is
// correct).
func worstCase(ctx context.Context, p protocol.Protocol, n, t int, seed int64) (msgs, sigs, phases int, err error) {
	type scenario struct {
		name  string
		value ident.Value
		adv   adversary.Adversary
	}
	scenarios := []scenario{
		{"honest-0", ident.V0, nil},
		{"honest-1", ident.V1, nil},
	}
	if t >= 1 {
		scenarios = append(scenarios,
			scenario{"split-brain", ident.V1, adversary.SplitBrain{LowValue: ident.V0, HighValue: ident.V1, SplitAt: ident.ProcID(n / 2)}},
			scenario{"silent", ident.V1, adversary.Silent{}},
			scenario{"crash", ident.V1, adversary.Crash{CrashAfter: 2}},
		)
	}
	for _, sc := range scenarios {
		res, runErr := core.Run(ctx, core.Config{
			Protocol: p, N: n, T: t, Value: sc.value, Adversary: sc.adv, Seed: seed,
		})
		if runErr != nil {
			return 0, 0, 0, fmt.Errorf("%s under %s: %w", p.Name(), sc.name, runErr)
		}
		if agErr := checkAgreementOnly(res, sc.value); agErr != nil {
			return 0, 0, 0, fmt.Errorf("%s under %s: %w", p.Name(), sc.name, agErr)
		}
		if m := res.Sim.Report.MessagesCorrect; m > msgs {
			msgs = m
		}
		if s := res.Sim.Report.SignaturesCorrect; s > sigs {
			sigs = s
		}
		phases = res.Phases
	}
	return msgs, sigs, phases, nil
}

// checkAgreementOnly verifies condition (i), and condition (ii) when the
// transmitter is correct, through the shared judge in core.
func checkAgreementOnly(res *core.Result, txValue ident.Value) error {
	_, err := core.CheckDecisions(res.Sim.Decisions, res.Faulty, 0, txValue)
	return err
}
