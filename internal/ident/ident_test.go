package ident_test

import (
	"testing"
	"testing/quick"

	"byzex/internal/ident"
)

func TestSetBasics(t *testing.T) {
	s := ident.NewSet(1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("len %d", s.Len())
	}
	if !s.Has(2) || s.Has(4) {
		t.Fatal("membership wrong")
	}
	if s.Add(2) {
		t.Fatal("re-adding reported new")
	}
	if !s.Add(4) {
		t.Fatal("adding new reported old")
	}
	s.Remove(1)
	if s.Has(1) {
		t.Fatal("remove failed")
	}
}

func TestSetSortedDeterministic(t *testing.T) {
	s := ident.NewSet(5, 3, 9, 1)
	want := []ident.ProcID{1, 3, 5, 9}
	got := s.Sorted()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted %v", got)
		}
	}
}

func TestSetAlgebra(t *testing.T) {
	a := ident.NewSet(1, 2, 3)
	b := ident.NewSet(3, 4)
	if u := a.Union(b); u.Len() != 4 {
		t.Fatalf("union %v", u.Sorted())
	}
	if i := a.Intersect(b); i.Len() != 1 || !i.Has(3) {
		t.Fatalf("intersect %v", i.Sorted())
	}
	if d := a.Diff(b); d.Len() != 2 || d.Has(3) {
		t.Fatalf("diff %v", d.Sorted())
	}
	// Originals untouched.
	if a.Len() != 3 || b.Len() != 2 {
		t.Fatal("algebra mutated operands")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := ident.NewSet(1)
	c := a.Clone()
	c.Add(2)
	if a.Has(2) {
		t.Fatal("clone shares storage")
	}
}

func TestNilSetReads(t *testing.T) {
	var s ident.Set
	if s.Has(1) || s.Len() != 0 {
		t.Fatal("nil set misbehaves")
	}
	if got := s.Sorted(); len(got) != 0 {
		t.Fatal("nil sorted non-empty")
	}
}

func TestRange(t *testing.T) {
	r := ident.Range(4)
	if len(r) != 4 || r[0] != 0 || r[3] != 3 {
		t.Fatalf("range %v", r)
	}
	if len(ident.Range(0)) != 0 {
		t.Fatal("empty range")
	}
}

func TestStrings(t *testing.T) {
	if ident.ProcID(7).String() != "p7" {
		t.Fatal("proc string")
	}
	if ident.None.String() != "p?" {
		t.Fatal("none string")
	}
	if ident.V1.String() != "v=1" {
		t.Fatal("value string")
	}
}

func TestQuickSetUnionCommutes(t *testing.T) {
	f := func(xs, ys []int16) bool {
		a, b := make(ident.Set), make(ident.Set)
		for _, x := range xs {
			a.Add(ident.ProcID(x))
		}
		for _, y := range ys {
			b.Add(ident.ProcID(y))
		}
		ab, ba := a.Union(b).Sorted(), b.Union(a).Sorted()
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDiffIntersectPartition(t *testing.T) {
	// |A| = |A∩B| + |A\B| for all A, B.
	f := func(xs, ys []int16) bool {
		a, b := make(ident.Set), make(ident.Set)
		for _, x := range xs {
			a.Add(ident.ProcID(x))
		}
		for _, y := range ys {
			b.Add(ident.ProcID(y))
		}
		return a.Len() == a.Intersect(b).Len()+a.Diff(b).Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
