// Package ident defines the primitive identifiers shared by every other
// package in the module: processor identities, agreement values, and small
// set utilities over processor identities.
//
// The paper models a system PR of n processors, one of which (the
// transmitter) holds a private value v from a value set V. We number
// processors 0..n-1 and, by convention throughout this module, processor 0
// is the transmitter unless a protocol documents otherwise.
package ident

import (
	"fmt"
	"sort"
)

// ProcID identifies a processor in the system. IDs are dense and start at 0.
type ProcID int32

// None is the sentinel "no processor" identity. It is never a valid sender
// or receiver.
const None ProcID = -1

// String implements fmt.Stringer, rendering p7 style identities.
func (p ProcID) String() string {
	if p == None {
		return "p?"
	}
	return fmt.Sprintf("p%d", int32(p))
}

// Value is an agreement value. The paper's lower bounds use the binary
// domain V = {0, 1}; the algorithms generalize to larger finite domains, so
// we keep Value an integer rather than a bool.
type Value int64

// Canonical binary values used by the paper's proofs and by the default
// decision of every protocol in this module ("agree on 0 when in doubt").
const (
	V0 Value = 0
	V1 Value = 1
)

// String implements fmt.Stringer.
func (v Value) String() string { return fmt.Sprintf("v=%d", int64(v)) }

// Set is a set of processor identities. The zero value is an empty, usable
// set (operations that add allocate lazily via the methods below; callers
// that range over a nil Set see nothing, matching Go map semantics).
type Set map[ProcID]struct{}

// NewSet builds a set from the given identities.
func NewSet(ids ...ProcID) Set {
	s := make(Set, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id into the set and reports whether it was newly added.
func (s Set) Add(id ProcID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// Has reports whether id is in the set.
func (s Set) Has(id ProcID) bool {
	_, ok := s[id]
	return ok
}

// Remove deletes id from the set if present.
func (s Set) Remove(id ProcID) { delete(s, id) }

// Len returns the cardinality of the set.
func (s Set) Len() int { return len(s) }

// Sorted returns the members in ascending order. The result is a fresh
// slice; mutating it does not affect the set.
func (s Set) Sorted() []ProcID {
	out := make([]ProcID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for id := range s {
		out[id] = struct{}{}
	}
	return out
}

// Union returns a new set containing the members of both sets.
func (s Set) Union(other Set) Set {
	out := s.Clone()
	for id := range other {
		out[id] = struct{}{}
	}
	return out
}

// Intersect returns a new set with the members common to both sets.
func (s Set) Intersect(other Set) Set {
	out := make(Set)
	for id := range s {
		if other.Has(id) {
			out[id] = struct{}{}
		}
	}
	return out
}

// Diff returns a new set with the members of s not in other.
func (s Set) Diff(other Set) Set {
	out := make(Set)
	for id := range s {
		if !other.Has(id) {
			out[id] = struct{}{}
		}
	}
	return out
}

// Range enumerates ids [0, n) as a slice. It is a convenience for building
// "all processors" sets and deterministic iteration orders.
func Range(n int) []ProcID {
	out := make([]ProcID, n)
	for i := range out {
		out[i] = ProcID(i)
	}
	return out
}
