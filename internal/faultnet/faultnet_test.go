package faultnet

import (
	"errors"
	"testing"

	"byzex/internal/ident"
)

func TestParseSpecFullExample(t *testing.T) {
	spec, err := ParseSpec("crash=1@3; drop=2->4@2-5/0.5; partition=0,1|5,6@2; delay=3->*@1-2+2; dup=*->0@*; reorder=6->*@4")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Rules) != 6 {
		t.Fatalf("got %d rules, want 6", len(spec.Rules))
	}
	if r := spec.Rules[0]; r.Kind != KCrash || r.Proc != 1 || r.AtPhase != 3 {
		t.Fatalf("crash rule: %+v", r)
	}
	if r := spec.Rules[1]; r.Kind != KDrop || r.From != 2 || r.To != 4 || r.First != 2 || r.Last != 5 || r.Prob != 0.5 {
		t.Fatalf("drop rule: %+v", r)
	}
	if r := spec.Rules[2]; r.Kind != KPartition || !r.GroupA.Has(0) || !r.GroupA.Has(1) || !r.GroupB.Has(5) || !r.GroupB.Has(6) || r.First != 2 || r.Last != 2 {
		t.Fatalf("partition rule: %+v", r)
	}
	if r := spec.Rules[3]; r.Kind != KDelay || r.From != 3 || r.To != ident.None || r.Delay != 2 || r.First != 1 || r.Last != 2 || r.Prob != 1 {
		t.Fatalf("delay rule: %+v", r)
	}
	if r := spec.Rules[4]; r.Kind != KDup || r.From != ident.None || r.To != 0 || r.First != 1 || r.Last != maxPhase {
		t.Fatalf("dup rule: %+v", r)
	}
	if r := spec.Rules[5]; r.Kind != KReorder || r.From != 6 || r.First != 4 || r.Last != 4 {
		t.Fatalf("reorder rule: %+v", r)
	}
	if _, err := Compile(spec, 1); err != nil {
		t.Fatalf("full example does not compile: %v", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"nonsense",
		"explode=1->2@1",
		"crash=x@1",
		"crash=1",
		"drop=2-4@1",
		"drop=1->2",
		"delay=1->2@3",
		"delay=1->2@3+x",
		"partition=1|@2",
		"partition=1,2@3",
		"drop=1->2@a-b",
		"drop=1->2@1/zz",
	} {
		if _, err := ParseSpec(s); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseSpec(%q) = %v, want ErrBadSpec", s, err)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	for name, spec := range map[string]Spec{
		"crash phase zero":    {Rules: []Rule{{Kind: KCrash, Proc: 1, AtPhase: 0}}},
		"double crash":        {Rules: []Rule{{Kind: KCrash, Proc: 1, AtPhase: 2}, {Kind: KCrash, Proc: 1, AtPhase: 3}}},
		"self link":           {Rules: []Rule{{Kind: KDrop, From: 2, To: 2, First: 1, Last: 1, Prob: 1}}},
		"delay zero":          {Rules: []Rule{{Kind: KDelay, From: 1, To: 2, First: 1, Last: 1, Prob: 1, Delay: 0}}},
		"inverted window":     {Rules: []Rule{{Kind: KDrop, From: 1, To: 2, First: 5, Last: 3, Prob: 1}}},
		"window before one":   {Rules: []Rule{{Kind: KDrop, From: 1, To: 2, First: 0, Last: 3, Prob: 1}}},
		"prob zero":           {Rules: []Rule{{Kind: KDrop, From: 1, To: 2, First: 1, Last: 1, Prob: 0}}},
		"prob above one":      {Rules: []Rule{{Kind: KDrop, From: 1, To: 2, First: 1, Last: 1, Prob: 1.5}}},
		"empty group":         {Rules: []Rule{{Kind: KPartition, GroupA: ident.NewSet(1), GroupB: ident.NewSet(), First: 1, Last: 1, Prob: 1}}},
		"overlapping groups":  {Rules: []Rule{{Kind: KPartition, GroupA: ident.NewSet(1, 2), GroupB: ident.NewSet(2, 3), First: 1, Last: 1, Prob: 1}}},
		"unknown kind":        {Rules: []Rule{{Kind: 0, First: 1, Last: 1, Prob: 1}}},
		"same crash repeated": {Rules: []Rule{{Kind: KCrash, Proc: 4, AtPhase: 2}, {Kind: KCrash, Proc: 4, AtPhase: 5}}},
	} {
		if _, err := Compile(spec, 1); !errors.Is(err, ErrBadSpec) {
			t.Errorf("%s: Compile = %v, want ErrBadSpec", name, err)
		}
	}
	// Re-stating the same crash phase is idempotent, not a conflict.
	if _, err := Compile(Spec{Rules: []Rule{
		{Kind: KCrash, Proc: 4, AtPhase: 2}, {Kind: KCrash, Proc: 4, AtPhase: 2},
	}}, 1); err != nil {
		t.Errorf("idempotent crash restatement rejected: %v", err)
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan not Empty")
	}
	if a := p.FrameAction(1, 0, 1); a.Kind != ActNone {
		t.Errorf("nil plan acts: %+v", a)
	}
	if p.CrashPhase(3) != 0 || p.Crashed(3, 9) {
		t.Error("nil plan crashes")
	}
	if p.CrashSilent(1, 0, 5) != 0 || p.Veiled(1, 0, 5) != 0 {
		t.Error("nil plan withholds")
	}
	if p.Affected(5).Len() != 0 {
		t.Error("nil plan affects")
	}
	if err := p.CheckBudget(5, 0); err != nil {
		t.Errorf("nil plan over budget: %v", err)
	}
	if c := p.ExpectedCounters(5, 4); c != (Counters{}) {
		t.Errorf("nil plan counts: %+v", c)
	}
}

func TestDeterministicCoin(t *testing.T) {
	const spec = "drop=*->*@*/0.5"
	a := MustParse(spec, 7)
	b := MustParse(spec, 7)
	other := MustParse(spec, 8)
	fired, total, differs := 0, 0, false
	for ph := 1; ph <= 20; ph++ {
		for from := ident.ProcID(0); from < 10; from++ {
			for to := ident.ProcID(0); to < 10; to++ {
				if from == to {
					continue
				}
				got := a.FrameAction(ph, from, to)
				if again := b.FrameAction(ph, from, to); again != got {
					t.Fatalf("same seed diverges at (%d,%v,%v): %+v vs %+v", ph, from, to, got, again)
				}
				if other.FrameAction(ph, from, to) != got {
					differs = true
				}
				total++
				if got.Kind == ActDrop {
					fired++
				}
			}
		}
	}
	if frac := float64(fired) / float64(total); frac < 0.35 || frac > 0.65 {
		t.Errorf("p=0.5 coin fired %d/%d (%.2f), want ≈ half", fired, total, frac)
	}
	if !differs {
		t.Error("seed 7 and seed 8 resolve identically on 1800 frames")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	p := MustParse("drop=0->2@1-2;dup=0->*@*", 1)
	if a := p.FrameAction(1, 0, 2); a.Kind != ActDrop {
		t.Errorf("phase 1, 0->2: %+v, want drop (first rule)", a)
	}
	if a := p.FrameAction(3, 0, 2); a.Kind != ActDup {
		t.Errorf("phase 3, 0->2: %+v, want dup (drop window over)", a)
	}
	if a := p.FrameAction(1, 0, 1); a.Kind != ActDup {
		t.Errorf("phase 1, 0->1: %+v, want dup (link mismatch on drop)", a)
	}
}

func TestPartitionCutsBothDirections(t *testing.T) {
	p := MustParse("partition=0,1|2,3@2", 1)
	for _, link := range [][2]ident.ProcID{{0, 2}, {2, 0}, {1, 3}, {3, 1}} {
		if a := p.FrameAction(2, link[0], link[1]); a.Kind != ActDrop {
			t.Errorf("partition misses %v->%v: %+v", link[0], link[1], a)
		}
	}
	// Intra-group links and out-of-window phases are untouched.
	if a := p.FrameAction(2, 0, 1); a.Kind != ActNone {
		t.Errorf("partition cuts intra-group link: %+v", a)
	}
	if a := p.FrameAction(3, 0, 2); a.Kind != ActNone {
		t.Errorf("partition fires outside its window: %+v", a)
	}
}

func TestCrashAccounting(t *testing.T) {
	p := MustParse("crash=1@2", 1)
	if p.CrashPhase(1) != 2 || p.CrashPhase(0) != 0 {
		t.Fatalf("crash phases: %d %d", p.CrashPhase(1), p.CrashPhase(0))
	}
	if p.Crashed(1, 1) || !p.Crashed(1, 2) || !p.Crashed(1, 9) {
		t.Fatal("Crashed threshold wrong")
	}
	if got := p.CrashSilent(1, 0, 4); got != 0 {
		t.Errorf("CrashSilent before the crash = %d", got)
	}
	if got := p.CrashSilent(2, 0, 4); got != 1 {
		t.Errorf("CrashSilent after the crash = %d, want 1", got)
	}
	if got := p.CrashSilent(2, 1, 4); got != 0 {
		t.Errorf("CrashSilent for the crashed receiver itself = %d, want 0", got)
	}
}

func TestVeiled(t *testing.T) {
	p := MustParse("crash=3@2;drop=0->2@1-2;delay=1->2@2+1", 1)
	if got := p.Veiled(1, 2, 4); got != 1 { // only the drop covers phase 1
		t.Errorf("Veiled(1, p2) = %d, want 1", got)
	}
	if got := p.Veiled(2, 2, 4); got != 2 { // drop + delay; 3 is crashed, not veiled
		t.Errorf("Veiled(2, p2) = %d, want 2", got)
	}
	if got := p.Veiled(1, 0, 4); got != 0 {
		t.Errorf("Veiled(1, p0) = %d, want 0", got)
	}
}

func TestAffectedAndBudget(t *testing.T) {
	p := MustParse("crash=1@2;drop=0->2@1-2;partition=3|4,5@1", 1)
	affected := p.Affected(6)
	for _, id := range []ident.ProcID{0, 1, 3} {
		if !affected.Has(id) {
			t.Errorf("Affected misses %v", id)
		}
	}
	if affected.Len() != 3 {
		t.Fatalf("Affected = %v, want {0,1,3}", affected.Sorted())
	}
	if err := p.CheckBudget(6, 3); err != nil {
		t.Errorf("in-budget plan rejected: %v", err)
	}
	if err := p.CheckBudget(6, 2); !errors.Is(err, ErrOverBudget) {
		t.Errorf("over-budget plan accepted: %v", err)
	}
	// A wildcard sender taints everybody.
	if got := MustParse("drop=*->3@1", 1).Affected(5).Len(); got != 5 {
		t.Errorf("wildcard-From Affected = %d, want 5", got)
	}
}

func TestExpectedCounters(t *testing.T) {
	// n=4, phases=3, deterministic rules. Processor 1 crashes at phase 2:
	// it sends only in phase 1 and consumes nothing from phase 1 on (its
	// delivery of sending phase ph happens at ph+1 ≥ 2), so links into 1
	// never count and links out of 1 count only for ph=1.
	p := MustParse("crash=1@2;drop=0->2@1-2;dup=3->*@2;delay=2->0@1-3+1", 1)
	got := p.ExpectedCounters(4, 3)
	want := Counters{
		Crashes: 1,
		Drops:   2, // (1,0,2) and (2,0,2)
		Dups:    2, // (2,3,0) and (2,3,2); (2,3,1) suppressed by the crash
		Delays:  3, // (ph,2,0) for ph=1..3
	}
	if got != want {
		t.Fatalf("ExpectedCounters = %+v, want %+v", got, want)
	}
	// A crash beyond the run's phases+1 steps never fires.
	late := MustParse("crash=1@9", 1)
	if c := late.ExpectedCounters(4, 3); c.Crashes != 0 {
		t.Errorf("crash at phase 9 counted in a 3-phase run: %+v", c)
	}
}

// TestPlanDigest pins the fingerprint the journal stores per admission: nil
// digests to 0, equal plans digest equal, and any change to the seed, a
// rule, or a crash schedule moves the digest.
func TestPlanDigest(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Digest() != 0 {
		t.Fatal("nil plan digest not 0")
	}
	const spec = "crash=1@2;drop=0->2@1-2/0.5;partition=0,1|2,3@2"
	a, b := MustParse(spec, 7), MustParse(spec, 7)
	if a.Digest() != b.Digest() || a.Digest() == 0 {
		t.Fatalf("equal plans digest %#x vs %#x", a.Digest(), b.Digest())
	}
	for name, other := range map[string]*Plan{
		"seed":      MustParse(spec, 8),
		"prob":      MustParse("crash=1@2;drop=0->2@1-2/0.6;partition=0,1|2,3@2", 7),
		"crash":     MustParse("crash=1@3;drop=0->2@1-2/0.5;partition=0,1|2,3@2", 7),
		"group":     MustParse("crash=1@2;drop=0->2@1-2/0.5;partition=0,1|2,4@2", 7),
		"rule-gone": MustParse("crash=1@2;drop=0->2@1-2/0.5", 7),
	} {
		if other.Digest() == a.Digest() {
			t.Errorf("%s change kept digest %#x", name, a.Digest())
		}
	}
}
