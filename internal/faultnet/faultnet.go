// Package faultnet compiles deterministic, seeded fault plans for the
// message substrates: per-link / per-phase drop, delay, duplicate and
// reorder actions, crash-at-phase-k processor halts, and network partitions.
//
// The paper's theorems bound what adversarial executions can force, so the
// repro needs to *inject* adversarial executions, not just simulate polite
// ones. A Plan is the injection schedule: a pure function from
// (phase, sender, receiver) to an Action, derived from a scenario Spec plus
// a single seed by stateless hashing — no RNG state is consumed per query,
// so every participant (each TCP peer, the in-memory engine, a test
// computing expectations) evaluates the identical schedule in any order,
// and two runs of the same seed replay byte-identically like everything
// else in this module.
//
// Fault semantics are chosen so that an in-budget plan stays inside the
// Byzantine fault model the protocols already tolerate: every action only
// mangles the traffic *sent by* a processor, so an affected sender is
// indistinguishable from a Byzantine one (drop = omission, duplicate =
// replay within the phase, delay = replay d phases later, reorder =
// permuted packing). Affected lists exactly those senders; a run that
// marks Affected ⊆ faulty with |faulty| ≤ t must therefore still reach
// agreement, and the scenario-matrix tests in package transport assert it
// for every algorithm.
package faultnet

import (
	"errors"
	"fmt"
	"math"

	"byzex/internal/ident"
)

// ErrOverBudget reports a plan whose affected-sender set exceeds the fault
// bound t — agreement is no longer guaranteed and substrates are expected
// to fail with a typed error (transport.ErrStalled / ErrPeerCrashed)
// rather than risk a divergent decision.
var ErrOverBudget = errors.New("faultnet: fault plan exceeds the fault budget")

// ErrBadSpec reports an invalid scenario description (parse or validation).
var ErrBadSpec = errors.New("faultnet: bad fault spec")

// Kind classifies a scenario rule.
type Kind uint8

// Rule kinds.
const (
	// KDrop discards the matched frame (the receiver still observes the
	// synchronizer arrival, so lock-step progress is unaffected — only the
	// content vanishes, like a Byzantine sender omitting its messages).
	KDrop Kind = iota + 1
	// KDelay holds the matched frame's content for Delay phases: messages
	// sent in phase p reach the receiver's inbox at step p+1+Delay.
	KDelay
	// KDup delivers the matched frame's messages twice.
	KDup
	// KReorder reverses the message order within the matched frame.
	KReorder
	// KCrash halts processor Proc at the start of phase AtPhase: it stops
	// sending, stepping and (over TCP) participating entirely.
	KCrash
	// KPartition drops every frame crossing between GroupA and GroupB
	// during the phase window, in both directions.
	KPartition
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KDrop:
		return "drop"
	case KDelay:
		return "delay"
	case KDup:
		return "dup"
	case KReorder:
		return "reorder"
	case KCrash:
		return "crash"
	case KPartition:
		return "partition"
	}
	return "unknown"
}

// maxPhase is the open upper bound of a wildcard phase window.
const maxPhase = int(^uint(0) >> 1)

// Rule is one scenario directive. Directed rules (drop/delay/dup/reorder)
// select a link: From/To are concrete processors or ident.None meaning
// "any". Crash rules use Proc/AtPhase; partition rules use GroupA/GroupB.
// First/Last bound the sending phases the rule covers (inclusive).
type Rule struct {
	Kind Kind

	// From and To select the link of a directed rule (ident.None = any).
	From, To ident.ProcID
	// First and Last are the inclusive sending-phase window.
	First, Last int
	// Prob is the per-frame firing probability in (0, 1]; 1 fires always.
	// Sub-unit probabilities are resolved by hashing (seed, rule, phase,
	// from, to), never by consuming RNG state.
	Prob float64
	// Delay is the phase count a KDelay rule holds a frame for.
	Delay int

	// Proc and AtPhase parameterize a KCrash rule.
	Proc    ident.ProcID
	AtPhase int

	// GroupA and GroupB are the two sides of a KPartition rule.
	GroupA, GroupB ident.Set
}

// matchesLink reports whether a directed or partition rule covers the frame
// (phase, from, to).
func (r *Rule) matchesLink(phase int, from, to ident.ProcID) bool {
	if phase < r.First || phase > r.Last {
		return false
	}
	if r.Kind == KPartition {
		return (r.GroupA.Has(from) && r.GroupB.Has(to)) ||
			(r.GroupB.Has(from) && r.GroupA.Has(to))
	}
	if r.From != ident.None && r.From != from {
		return false
	}
	if r.To != ident.None && r.To != to {
		return false
	}
	return true
}

// Spec is a symbolic fault scenario: an ordered rule list (the first
// matching rule wins per frame). Build one directly or via ParseSpec.
type Spec struct {
	Rules []Rule
}

// ActionKind classifies the resolved per-frame action.
type ActionKind uint8

// Resolved actions.
const (
	ActNone ActionKind = iota
	ActDrop
	ActDelay
	ActDup
	ActReorder
)

// Action is the plan's verdict for one frame.
type Action struct {
	Kind ActionKind
	// Delay is the hold duration in phases (ActDelay only).
	Delay int
}

// Counters tallies the fault events a plan produces over a run — the same
// quantities the fault-* trace kinds count, so tests can assert that traces
// match the plan exactly.
type Counters struct {
	Drops, Delays, Dups, Reorders, Crashes int
}

// Plan is a compiled, seeded fault schedule. All methods are safe on a nil
// receiver (a nil *Plan injects nothing), so substrates hold one pointer
// and skip every nil check on the hot path.
type Plan struct {
	seed  int64
	rules []Rule               // directed + partition rules, in spec order
	crash map[ident.ProcID]int // processor -> crash phase
}

// Compile validates spec and binds it to seed.
func Compile(spec Spec, seed int64) (*Plan, error) {
	p := &Plan{seed: seed, crash: make(map[ident.ProcID]int)}
	for i, r := range spec.Rules {
		switch r.Kind {
		case KCrash:
			if r.Proc < 0 {
				return nil, fmt.Errorf("%w: rule %d: crash processor %v", ErrBadSpec, i, r.Proc)
			}
			if r.AtPhase < 1 {
				return nil, fmt.Errorf("%w: rule %d: crash phase %d < 1", ErrBadSpec, i, r.AtPhase)
			}
			if prev, ok := p.crash[r.Proc]; ok && prev != r.AtPhase {
				return nil, fmt.Errorf("%w: rule %d: %v crashes twice (phase %d and %d)", ErrBadSpec, i, r.Proc, prev, r.AtPhase)
			}
			p.crash[r.Proc] = r.AtPhase
			continue
		case KDrop, KDelay, KDup, KReorder:
			if r.From != ident.None && r.From < 0 || r.To != ident.None && r.To < 0 {
				return nil, fmt.Errorf("%w: rule %d: bad link %v->%v", ErrBadSpec, i, r.From, r.To)
			}
			if r.From != ident.None && r.From == r.To {
				return nil, fmt.Errorf("%w: rule %d: self link %v->%v", ErrBadSpec, i, r.From, r.To)
			}
			if r.Kind == KDelay && r.Delay < 1 {
				return nil, fmt.Errorf("%w: rule %d: delay %d < 1", ErrBadSpec, i, r.Delay)
			}
		case KPartition:
			if r.GroupA.Len() == 0 || r.GroupB.Len() == 0 {
				return nil, fmt.Errorf("%w: rule %d: empty partition group", ErrBadSpec, i)
			}
			if r.GroupA.Intersect(r.GroupB).Len() > 0 {
				return nil, fmt.Errorf("%w: rule %d: partition groups overlap", ErrBadSpec, i)
			}
		default:
			return nil, fmt.Errorf("%w: rule %d: unknown kind %d", ErrBadSpec, i, r.Kind)
		}
		if r.First < 1 || r.Last < r.First {
			return nil, fmt.Errorf("%w: rule %d: phase window [%d,%d]", ErrBadSpec, i, r.First, r.Last)
		}
		if r.Prob <= 0 || r.Prob > 1 {
			return nil, fmt.Errorf("%w: rule %d: probability %g outside (0,1]", ErrBadSpec, i, r.Prob)
		}
		rr := r
		rr.GroupA = r.GroupA.Clone()
		rr.GroupB = r.GroupB.Clone()
		p.rules = append(p.rules, rr)
	}
	return p, nil
}

// MustCompile is Compile for tests and examples with known-good specs.
func MustCompile(spec Spec, seed int64) *Plan {
	p, err := Compile(spec, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (len(p.rules) == 0 && len(p.crash) == 0)
}

// Digest returns a stable 64-bit fingerprint of the compiled plan: the seed
// plus every rule field in spec order (FNV-64a). Two plans with equal digests
// inject the identical schedule, so a journaled digest is enough to verify at
// recovery that a replayed admission re-executes under the same faults it was
// admitted with. A nil plan (no injection) digests to 0.
func (p *Plan) Digest() uint64 {
	if p == nil {
		return 0
	}
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(p.seed))
	mix(uint64(len(p.rules)))
	for i := range p.rules {
		r := &p.rules[i]
		mix(uint64(r.Kind))
		mix(uint64(r.From))
		mix(uint64(r.To))
		mix(uint64(r.First))
		mix(uint64(r.Last))
		mix(math.Float64bits(r.Prob))
		mix(uint64(r.Delay))
		mix(uint64(r.Proc))
		mix(uint64(r.AtPhase))
		for _, id := range r.GroupA.Sorted() {
			mix(uint64(id) + 1)
		}
		mix(0) // group separator
		for _, id := range r.GroupB.Sorted() {
			mix(uint64(id) + 1)
		}
	}
	// Crash rules land in p.crash, not p.rules; fold them in sorted order so
	// map iteration never perturbs the digest.
	crashed := make(ident.Set, len(p.crash))
	for id := range p.crash {
		crashed.Add(id)
	}
	for _, id := range crashed.Sorted() {
		mix(uint64(id))
		mix(uint64(p.crash[id]))
	}
	return h
}

// FrameAction resolves the plan's verdict for the frame sent by from to to
// during phase. Rules are consulted in spec order; the first rule that
// matches the link, covers the phase and passes its probability coin wins.
// Frames from a crashed sender never exist, so callers should consult
// Crashed first; FrameAction does not re-check it.
func (p *Plan) FrameAction(phase int, from, to ident.ProcID) Action {
	if p == nil {
		return Action{}
	}
	for i := range p.rules {
		r := &p.rules[i]
		if !r.matchesLink(phase, from, to) {
			continue
		}
		if !p.coin(i, phase, from, to, r.Prob) {
			continue
		}
		switch r.Kind {
		case KDrop, KPartition:
			return Action{Kind: ActDrop}
		case KDelay:
			return Action{Kind: ActDelay, Delay: r.Delay}
		case KDup:
			return Action{Kind: ActDup}
		case KReorder:
			return Action{Kind: ActReorder}
		}
	}
	return Action{}
}

// CrashPhase returns the phase at whose start id halts, or 0 if it never
// crashes.
func (p *Plan) CrashPhase(id ident.ProcID) int {
	if p == nil {
		return 0
	}
	return p.crash[id]
}

// Crashed reports whether id has halted by phase (crash phase ≤ phase).
func (p *Plan) Crashed(id ident.ProcID, phase int) bool {
	if p == nil {
		return false
	}
	cp, ok := p.crash[id]
	return ok && cp <= phase
}

// CrashSilent counts the senders (≠ to, among n processors) whose frames
// for phase will never exist because they crashed. The TCP synchronizer
// subtracts this from its per-phase arrival quota so crash scenarios never
// wait out the phase timeout.
func (p *Plan) CrashSilent(phase int, to ident.ProcID, n int) int {
	if p == nil || len(p.crash) == 0 {
		return 0
	}
	count := 0
	for id, cp := range p.crash {
		if id != to && int(id) < n && cp <= phase {
			count++
		}
	}
	return count
}

// Veiled counts the live senders (≠ to, among n processors) whose phase
// frame arrives but whose content this plan withholds from to (dropped or
// delayed). Together with the physically absent senders this is the
// receiver's per-phase information gap, which the transport checks against
// the fault bound t.
func (p *Plan) Veiled(phase int, to ident.ProcID, n int) int {
	if p.Empty() {
		return 0
	}
	count := 0
	for s := 0; s < n; s++ {
		from := ident.ProcID(s)
		if from == to || p.Crashed(from, phase) {
			continue
		}
		if k := p.FrameAction(phase, from, to).Kind; k == ActDrop || k == ActDelay {
			count++
		}
	}
	return count
}

// Affected returns the processors whose *sent* traffic the plan can touch:
// crashed processors, the From side of every directed rule (all processors
// for a wildcard From), and the smaller side of every partition. A run
// whose faulty set covers Affected with |faulty| ≤ t must still reach
// agreement — every injected fault is then attributable to a processor the
// protocols already tolerate misbehaving.
func (p *Plan) Affected(n int) ident.Set {
	out := make(ident.Set)
	if p == nil {
		return out
	}
	for id := range p.crash {
		if int(id) < n {
			out.Add(id)
		}
	}
	for i := range p.rules {
		r := &p.rules[i]
		switch r.Kind {
		case KPartition:
			small := r.GroupA
			if r.GroupB.Len() < r.GroupA.Len() {
				small = r.GroupB
			}
			for id := range small {
				if int(id) < n {
					out.Add(id)
				}
			}
		default:
			if r.From == ident.None {
				for _, id := range ident.Range(n) {
					out.Add(id)
				}
			} else if int(r.From) < n {
				out.Add(r.From)
			}
		}
	}
	return out
}

// CheckBudget returns ErrOverBudget when the plan affects more than t of
// the n processors.
func (p *Plan) CheckBudget(n, t int) error {
	affected := p.Affected(n)
	if affected.Len() > t {
		return fmt.Errorf("%w: %d affected processors %v > t=%d", ErrOverBudget, affected.Len(), affected.Sorted(), t)
	}
	return nil
}

// ExpectedCounters tallies the fault events a run of n processors over
// `phases` sending phases emits under this plan — the ground truth the
// scenario tests compare trace summaries against. The accounting mirrors
// both substrates exactly: one event per matched frame per link per
// sending phase, evaluated only while sender (at the sending phase) and
// receiver (at the delivery phase) are still alive, plus one crash event
// per processor halting within the run's phases+1 steps.
func (p *Plan) ExpectedCounters(n, phases int) Counters {
	var c Counters
	if p.Empty() {
		return c
	}
	for id, cp := range p.crash {
		if int(id) < n && cp >= 1 && cp <= phases+1 {
			c.Crashes++
		}
	}
	for ph := 1; ph <= phases; ph++ {
		for s := 0; s < n; s++ {
			from := ident.ProcID(s)
			if p.Crashed(from, ph) {
				continue
			}
			for r := 0; r < n; r++ {
				to := ident.ProcID(r)
				if to == from || p.Crashed(to, ph+1) {
					continue
				}
				switch p.FrameAction(ph, from, to).Kind {
				case ActDrop:
					c.Drops++
				case ActDelay:
					c.Delays++
				case ActDup:
					c.Dups++
				case ActReorder:
					c.Reorders++
				}
			}
		}
	}
	return c
}

// coin is the deterministic probability gate: a stateless hash of
// (seed, rule index, phase, from, to) compared against prob. No RNG state
// means every participant resolves the same verdict regardless of query
// order, which is what keeps fault runs replayable.
func (p *Plan) coin(rule, phase int, from, to ident.ProcID, prob float64) bool {
	if prob >= 1 {
		return true
	}
	x := uint64(p.seed)
	for _, v := range [...]uint64{uint64(rule) + 1, uint64(phase), uint64(int64(from)) + 2, uint64(int64(to)) + 2} {
		x = splitmix64(x ^ (v * 0x9e3779b97f4a7c15))
	}
	return float64(x>>11)/float64(1<<53) < prob
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
