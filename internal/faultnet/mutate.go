package faultnet

import (
	"fmt"
	mrand "math/rand"
	"strconv"
	"strings"

	"byzex/internal/ident"
)

// This file is the search-facing surface of the fault DSL: FormatSpec turns
// a Spec back into the textual form ParseSpec accepts (so a searched plan
// can be archived and replayed byte-identically), and MutateSpec produces a
// structurally valid random neighbor — the fault-plan half of the adversary
// search move set (see internal/search).

// FormatSpec renders a spec in the ParseSpec DSL. The output round-trips:
// ParseSpec(FormatSpec(s)) yields a spec equal to s. An empty spec renders
// as "".
func FormatSpec(s Spec) string {
	parts := make([]string, 0, len(s.Rules))
	for i := range s.Rules {
		parts = append(parts, formatRule(&s.Rules[i]))
	}
	return strings.Join(parts, ";")
}

func formatRule(r *Rule) string {
	switch r.Kind {
	case KCrash:
		return fmt.Sprintf("crash=%d@%d", int(r.Proc), r.AtPhase)
	case KDrop:
		return "drop=" + formatLink(r.From, r.To) + "@" + formatWindow(r.First, r.Last) + formatProb(r.Prob)
	case KDup:
		return "dup=" + formatLink(r.From, r.To) + "@" + formatWindow(r.First, r.Last) + formatProb(r.Prob)
	case KReorder:
		return "reorder=" + formatLink(r.From, r.To) + "@" + formatWindow(r.First, r.Last) + formatProb(r.Prob)
	case KDelay:
		return "delay=" + formatLink(r.From, r.To) + "@" + formatWindow(r.First, r.Last) +
			"+" + strconv.Itoa(r.Delay) + formatProb(r.Prob)
	case KPartition:
		return "partition=" + formatIDs(r.GroupA) + "|" + formatIDs(r.GroupB) + "@" + formatWindow(r.First, r.Last)
	default:
		return fmt.Sprintf("?kind=%d", r.Kind)
	}
}

func formatLink(from, to ident.ProcID) string {
	return formatProcWild(from) + "->" + formatProcWild(to)
}

func formatProcWild(p ident.ProcID) string {
	if p == ident.None {
		return "*"
	}
	return strconv.Itoa(int(p))
}

func formatWindow(first, last int) string {
	switch {
	case first == 1 && last == maxPhase:
		return "*"
	case first == last:
		return strconv.Itoa(first)
	default:
		return strconv.Itoa(first) + "-" + strconv.Itoa(last)
	}
}

func formatProb(p float64) string {
	if p == 1 || p == 0 {
		return ""
	}
	return "/" + strconv.FormatFloat(p, 'g', -1, 64)
}

func formatIDs(s ident.Set) string {
	ids := s.Sorted()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.Itoa(int(id))
	}
	return strings.Join(parts, ",")
}

// probSteps is the discrete probability grid mutation draws from; a small
// grid keeps the searched space enumerable and the DSL rendering exact.
var probSteps = []float64{0.25, 0.5, 0.75, 1}

// MutateSpec returns a random structurally-valid neighbor of spec for a
// system of n processors whose protocol sends through phase `phases`. The
// receiver spec is not modified. Moves: append a fresh rule, delete a rule,
// or tweak one rule's window, probability, link or delay. Every result
// passes Compile's validation (crash phases >= 1, windows well-formed,
// probabilities in (0,1], no self-links, no duplicate crash of one
// processor); budget admissibility is the caller's concern via Affected /
// CheckBudget.
func MutateSpec(spec Spec, rng *mrand.Rand, n, phases int) Spec {
	if n < 2 {
		return cloneSpec(spec)
	}
	if phases < 1 {
		phases = 1
	}
	out := cloneSpec(spec)
	switch {
	case len(out.Rules) == 0 || rng.Intn(3) == 0:
		out.Rules = append(out.Rules, randomRule(rng, n, phases, crashedProcs(out)))
	case rng.Intn(3) == 0:
		i := rng.Intn(len(out.Rules))
		out.Rules = append(out.Rules[:i], out.Rules[i+1:]...)
		if len(out.Rules) == 0 {
			out.Rules = nil
		}
	default:
		tweakRule(&out.Rules[rng.Intn(len(out.Rules))], rng, n, phases)
	}
	return out
}

func cloneSpec(spec Spec) Spec {
	if len(spec.Rules) == 0 {
		return Spec{}
	}
	out := Spec{Rules: make([]Rule, len(spec.Rules))}
	copy(out.Rules, spec.Rules)
	for i := range out.Rules {
		if out.Rules[i].GroupA != nil {
			out.Rules[i].GroupA = out.Rules[i].GroupA.Clone()
		}
		if out.Rules[i].GroupB != nil {
			out.Rules[i].GroupB = out.Rules[i].GroupB.Clone()
		}
	}
	return out
}

func crashedProcs(spec Spec) ident.Set {
	out := make(ident.Set)
	for i := range spec.Rules {
		if spec.Rules[i].Kind == KCrash {
			out.Add(spec.Rules[i].Proc)
		}
	}
	return out
}

// randomRule draws a fresh rule. Crash rules avoid processors already
// crashed by the spec (Compile rejects double-crash) and avoid processor 0,
// the conventional transmitter, so random moves do not waste evaluations on
// trivially infeasible plans.
func randomRule(rng *mrand.Rand, n, phases int, crashed ident.Set) Rule {
	first := 1 + rng.Intn(phases)
	last := first + rng.Intn(phases-first+1)
	prob := probSteps[rng.Intn(len(probSteps))]
	switch rng.Intn(5) {
	case 0:
		// Crash a random non-transmitter processor that is still up.
		for range n {
			p := ident.ProcID(1 + rng.Intn(n-1))
			if !crashed.Has(p) {
				return Rule{Kind: KCrash, Proc: p, AtPhase: first}
			}
		}
		// Everyone already crashes somewhere; degrade to a drop rule.
		fallthrough
	case 1:
		from, to := randomLink(rng, n)
		return Rule{Kind: KDrop, From: from, To: to, First: first, Last: last, Prob: prob}
	case 2:
		from, to := randomLink(rng, n)
		return Rule{Kind: KDelay, From: from, To: to, First: first, Last: last, Prob: prob, Delay: 1 + rng.Intn(2)}
	case 3:
		from, to := randomLink(rng, n)
		return Rule{Kind: KDup, From: from, To: to, First: first, Last: last, Prob: prob}
	default:
		from, to := randomLink(rng, n)
		return Rule{Kind: KReorder, From: from, To: to, First: first, Last: last, Prob: prob}
	}
}

// randomLink draws (from, to), never a self-link (Compile rejects those).
// From is almost always a concrete processor: Plan.Affected attributes a
// directed rule to its sender, and a wildcard sender marks all n processors
// affected — instantly over any useful fault budget, so such rules would
// only waste search evaluations.
func randomLink(rng *mrand.Rand, n int) (from, to ident.ProcID) {
	from, to = ident.ProcID(rng.Intn(n)), ident.None
	if rng.Intn(8) == 0 {
		from = ident.None
	}
	if rng.Intn(2) == 0 {
		to = ident.ProcID(rng.Intn(n))
	}
	if from != ident.None && from == to {
		to = ident.ProcID((int(to) + 1) % n)
	}
	return from, to
}

func tweakRule(r *Rule, rng *mrand.Rand, n, phases int) {
	if r.Kind == KCrash {
		r.AtPhase = 1 + rng.Intn(phases)
		return
	}
	switch rng.Intn(3) {
	case 0: // move the window
		r.First = 1 + rng.Intn(phases)
		r.Last = r.First + rng.Intn(phases-r.First+1)
	case 1: // re-draw the probability
		r.Prob = probSteps[rng.Intn(len(probSteps))]
	default: // re-draw the link (partitions have no link; re-window instead)
		if r.Kind == KPartition {
			r.First = 1 + rng.Intn(phases)
			r.Last = r.First + rng.Intn(phases-r.First+1)
			return
		}
		r.From, r.To = randomLink(rng, n)
		if r.Kind == KDelay {
			r.Delay = 1 + rng.Intn(2)
		}
	}
}
