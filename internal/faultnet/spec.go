package faultnet

import (
	"fmt"
	"strconv"
	"strings"

	"byzex/internal/ident"
)

// ParseSpec parses the textual scenario language used by the -faults flags:
// semicolon-separated directives, each one rule, evaluated in order (first
// match wins per frame).
//
//	crash=<proc>@<phase>                 halt proc at the start of phase
//	drop=<link>@<window>[/<prob>]        discard matching frames
//	delay=<link>@<window>+<d>[/<prob>]   hold content for d phases
//	dup=<link>@<window>[/<prob>]         deliver matching frames twice
//	reorder=<link>@<window>[/<prob>]     reverse messages within the frame
//	partition=<ids>|<ids>@<window>       cut all links between the groups
//
//	<link>   = <proc|*> -> <proc|*>      sender -> receiver, * = any
//	<window> = * | <phase> | <a>-<b>     inclusive sending-phase range
//	<prob>   = (0,1]                     per-frame firing probability
//	<ids>    = <proc>[,<proc>...]
//
// Example: "crash=1@3;drop=2->4@2-5/0.5;partition=0,1|5,6@2".
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, rest, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("%w: directive %q has no '='", ErrBadSpec, part)
		}
		var (
			rule Rule
			err  error
		)
		switch key {
		case "crash":
			rule, err = parseCrash(rest)
		case "drop", "dup", "reorder":
			rule, err = parseDirected(key, rest)
		case "delay":
			rule, err = parseDelay(rest)
		case "partition":
			rule, err = parsePartition(rest)
		default:
			err = fmt.Errorf("%w: unknown directive %q", ErrBadSpec, key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("%s: %w", part, err)
		}
		spec.Rules = append(spec.Rules, rule)
	}
	return spec, nil
}

// MustParse compiles a literal spec+seed in one call, for tests and examples.
func MustParse(s string, seed int64) *Plan {
	spec, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return MustCompile(spec, seed)
}

func parseCrash(rest string) (Rule, error) {
	procStr, phaseStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Rule{}, fmt.Errorf("%w: crash needs <proc>@<phase>", ErrBadSpec)
	}
	proc, err := parseProc(procStr)
	if err != nil || proc == ident.None {
		return Rule{}, fmt.Errorf("%w: crash processor %q", ErrBadSpec, procStr)
	}
	phase, err := strconv.Atoi(strings.TrimSpace(phaseStr))
	if err != nil {
		return Rule{}, fmt.Errorf("%w: crash phase %q", ErrBadSpec, phaseStr)
	}
	return Rule{Kind: KCrash, Proc: proc, AtPhase: phase}, nil
}

func parseDirected(key, rest string) (Rule, error) {
	kind := map[string]Kind{"drop": KDrop, "dup": KDup, "reorder": KReorder}[key]
	linkStr, winStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Rule{}, fmt.Errorf("%w: %s needs <link>@<window>", ErrBadSpec, key)
	}
	rule := Rule{Kind: kind}
	var err error
	if rule.From, rule.To, err = parseLink(linkStr); err != nil {
		return Rule{}, err
	}
	if rule.First, rule.Last, rule.Prob, err = parseWindowProb(winStr); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func parseDelay(rest string) (Rule, error) {
	linkStr, winStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Rule{}, fmt.Errorf("%w: delay needs <link>@<window>+<d>", ErrBadSpec)
	}
	winStr, probStr := splitProb(winStr)
	winStr, dStr, ok := strings.Cut(winStr, "+")
	if !ok {
		return Rule{}, fmt.Errorf("%w: delay needs +<phases>", ErrBadSpec)
	}
	rule := Rule{Kind: KDelay}
	var err error
	if rule.From, rule.To, err = parseLink(linkStr); err != nil {
		return Rule{}, err
	}
	if rule.First, rule.Last, err = parseWindow(winStr); err != nil {
		return Rule{}, err
	}
	if rule.Delay, err = strconv.Atoi(strings.TrimSpace(dStr)); err != nil {
		return Rule{}, fmt.Errorf("%w: delay amount %q", ErrBadSpec, dStr)
	}
	if rule.Prob, err = parseProb(probStr); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func parsePartition(rest string) (Rule, error) {
	groupsStr, winStr, ok := strings.Cut(rest, "@")
	if !ok {
		return Rule{}, fmt.Errorf("%w: partition needs <ids>|<ids>@<window>", ErrBadSpec)
	}
	aStr, bStr, ok := strings.Cut(groupsStr, "|")
	if !ok {
		return Rule{}, fmt.Errorf("%w: partition needs two '|'-separated groups", ErrBadSpec)
	}
	rule := Rule{Kind: KPartition, Prob: 1}
	var err error
	if rule.GroupA, err = parseIDs(aStr); err != nil {
		return Rule{}, err
	}
	if rule.GroupB, err = parseIDs(bStr); err != nil {
		return Rule{}, err
	}
	if rule.First, rule.Last, err = parseWindow(winStr); err != nil {
		return Rule{}, err
	}
	return rule, nil
}

func parseLink(s string) (from, to ident.ProcID, err error) {
	fromStr, toStr, ok := strings.Cut(s, "->")
	if !ok {
		return 0, 0, fmt.Errorf("%w: link %q needs <from>-><to>", ErrBadSpec, s)
	}
	if from, err = parseProc(fromStr); err != nil {
		return 0, 0, err
	}
	if to, err = parseProc(toStr); err != nil {
		return 0, 0, err
	}
	return from, to, nil
}

func parseProc(s string) (ident.ProcID, error) {
	s = strings.TrimSpace(s)
	if s == "*" {
		return ident.None, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("%w: processor %q", ErrBadSpec, s)
	}
	return ident.ProcID(v), nil
}

func parseIDs(s string) (ident.Set, error) {
	out := make(ident.Set)
	for _, f := range strings.Split(s, ",") {
		id, err := parseProc(f)
		if err != nil || id == ident.None {
			return nil, fmt.Errorf("%w: group member %q", ErrBadSpec, f)
		}
		out.Add(id)
	}
	return out, nil
}

// splitProb splits a trailing "/<prob>" off a window expression.
func splitProb(s string) (window, prob string) {
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

func parseProb(s string) (float64, error) {
	if s == "" {
		return 1, nil
	}
	p, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("%w: probability %q", ErrBadSpec, s)
	}
	return p, nil
}

func parseWindowProb(s string) (first, last int, prob float64, err error) {
	winStr, probStr := splitProb(s)
	if first, last, err = parseWindow(winStr); err != nil {
		return 0, 0, 0, err
	}
	if prob, err = parseProb(probStr); err != nil {
		return 0, 0, 0, err
	}
	return first, last, prob, nil
}

func parseWindow(s string) (first, last int, err error) {
	s = strings.TrimSpace(s)
	if s == "*" {
		return 1, maxPhase, nil
	}
	if a, b, ok := strings.Cut(s, "-"); ok {
		first, err = strconv.Atoi(strings.TrimSpace(a))
		if err != nil {
			return 0, 0, fmt.Errorf("%w: phase %q", ErrBadSpec, a)
		}
		last, err = strconv.Atoi(strings.TrimSpace(b))
		if err != nil {
			return 0, 0, fmt.Errorf("%w: phase %q", ErrBadSpec, b)
		}
		return first, last, nil
	}
	first, err = strconv.Atoi(s)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: phase window %q", ErrBadSpec, s)
	}
	return first, first, nil
}
