package faultnet

import (
	mrand "math/rand"
	"reflect"
	"testing"
)

// TestFormatSpecRoundTrip pins the archival contract: a searched plan is
// stored as DSL text, so FormatSpec output must parse back to an equal spec.
func TestFormatSpecRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"crash=1@3",
		"drop=2->4@2-5/0.5",
		"drop=*->4@*",
		"dup=2->*@3",
		"reorder=1->0@1-2/0.25",
		"delay=3->1@2-4+2/0.75",
		"partition=0,1|5,6@2",
		"crash=1@3;drop=2->4@2-5/0.5;partition=0,1|5,6@2-3",
	}
	for _, in := range specs {
		spec, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		text := FormatSpec(spec)
		back, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("ParseSpec(FormatSpec(%q)) = ParseSpec(%q): %v", in, text, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("round trip of %q via %q changed the spec:\n  %+v\n  %+v", in, text, spec, back)
		}
	}
}

// TestMutateSpecStaysValid drives many mutation chains and requires every
// intermediate spec to compile, round-trip through the DSL, and leave its
// parent untouched — the properties the search relies on.
func TestMutateSpecStaysValid(t *testing.T) {
	const n, phases = 7, 5
	rng := mrand.New(mrand.NewSource(11))
	spec := Spec{}
	for i := 0; i < 300; i++ {
		before := FormatSpec(spec)
		next := MutateSpec(spec, rng, n, phases)
		if got := FormatSpec(spec); got != before {
			t.Fatalf("mutation %d modified its input: %q -> %q", i, before, got)
		}
		if _, err := Compile(next, 1); err != nil {
			t.Fatalf("mutation %d produced an uncompilable spec %q: %v", i, FormatSpec(next), err)
		}
		text := FormatSpec(next)
		back, err := ParseSpec(text)
		if err != nil {
			t.Fatalf("mutation %d: ParseSpec(%q): %v", i, text, err)
		}
		if !reflect.DeepEqual(next, back) {
			t.Fatalf("mutation %d: %q does not round-trip", i, text)
		}
		spec = next
	}
}

// TestMutateSpecDeterministic pins that equal RNG seeds produce equal
// mutation chains — the fault-plan half of the search determinism contract.
func TestMutateSpecDeterministic(t *testing.T) {
	chain := func() []string {
		rng := mrand.New(mrand.NewSource(23))
		spec := Spec{}
		out := make([]string, 0, 50)
		for i := 0; i < 50; i++ {
			spec = MutateSpec(spec, rng, 6, 4)
			out = append(out, FormatSpec(spec))
		}
		return out
	}
	a, b := chain(), chain()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mutation chains diverged:\n%v\n%v", a, b)
	}
}
