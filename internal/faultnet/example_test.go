package faultnet_test

import (
	"fmt"

	"byzex/internal/faultnet"
)

// ExampleParseSpec parses the -faults scenario language, compiles it against
// a seed and checks the plan against the fault budget — exactly what the
// CLI tools do with a -faults flag.
func ExampleParseSpec() {
	spec, err := faultnet.ParseSpec("crash=1@3;drop=2->4@2-5/0.5")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("rules:", len(spec.Rules))

	// Compiling binds the probabilistic rules to a seed; the plan is then a
	// pure function, so replays inject byte-identical faults.
	plan := faultnet.MustCompile(spec, 7)
	fmt.Println("affected:", plan.Affected(7).Sorted())
	fmt.Println("in budget for n=7 t=3:", plan.CheckBudget(7, 3) == nil)
	// Output:
	// rules: 2
	// affected: [p1 p2]
	// in budget for n=7 t=3: true
}
