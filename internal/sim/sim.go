// Package sim implements the synchronous message-passing model of Section 2
// of the paper: n completely interconnected processors proceed in lock-step
// phases; during phase k a processor sends messages that are delivered at
// the start of phase k+1; a receiver always knows the immediate source of a
// message ("no processor can send a message to p claiming to be somebody
// else"); and at the beginning of phase k the individual subhistory built
// from the first k-1 phases is all a processor has to work with.
//
// The engine is single-threaded and deterministic: nodes are stepped in
// identity order and inboxes are sorted by sender. Byzantine processors are
// simply Node implementations supplied by the adversary; the engine treats
// them identically and only the metrics layer distinguishes correct from
// faulty senders.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"byzex/internal/faultnet"
	"byzex/internal/ident"
	"byzex/internal/metrics"
	"byzex/internal/trace"
)

// Errors returned by the engine and the send path.
var (
	// ErrSendClosed indicates a send after the protocol's last phase.
	ErrSendClosed = errors.New("sim: send after final phase")
	// ErrBadRecipient indicates a send to an out-of-range or self identity.
	ErrBadRecipient = errors.New("sim: bad recipient")
)

// Envelope is one message in flight. Payload is the protocol-level encoding;
// Signers and SigTotal describe the signatures the payload carries so the
// engine and observers can account for them without parsing protocol bytes.
type Envelope struct {
	From  ident.ProcID
	To    ident.ProcID
	Phase int // phase during which the message was sent

	Payload []byte

	// Signers lists the distinct processor identities whose signatures
	// appear anywhere in the payload. It is reported by the sending code;
	// for correct nodes it is trustworthy by construction, and the
	// lower-bound machinery (computation of the sets A(p) of Theorem 1)
	// relies on it.
	Signers []ident.ProcID

	// SigTotal counts signature links with multiplicity, the quantity
	// bounded by Theorem 1.
	SigTotal int
}

// Clone returns a copy of the envelope that shares no mutable state with
// the original.
func (e Envelope) Clone() Envelope {
	out := e
	out.Payload = append([]byte(nil), e.Payload...)
	out.Signers = append([]ident.ProcID(nil), e.Signers...)
	return out
}

// Node is a processor's protocol state machine. Implementations are built by
// protocol factories (package protocol) or by adversaries (package
// adversary).
type Node interface {
	// Step is invoked once per phase in increasing order. inbox contains
	// the messages sent to this node during the previous phase, sorted by
	// sender. Outgoing messages are submitted through ctx.Send; they will
	// be delivered at the start of the next phase. The final invocation
	// (one past the protocol's last phase) is delivery-only: Send fails.
	//
	// The inbox slice (like ctx) is only valid for the duration of the
	// call: the engine recycles the backing array for a later phase's
	// deliveries. Envelope payloads are never recycled, so copying the
	// Envelope values (or retaining their Payload slices) is safe.
	Step(ctx *Context, inbox []Envelope) error

	// Decide returns the node's decision after the run. ok is false if the
	// node has not decided (a correctness violation for correct nodes once
	// the protocol completed).
	Decide() (ident.Value, bool)
}

// Context gives a node its identity, the system parameters, and the send
// path for the current phase. A Context is only valid for the duration of
// the Step call it is passed to.
type Context struct {
	id          ident.ProcID
	n, t        int
	transmitter ident.ProcID
	phase       int
	lastPhase   int
	submit      func(Envelope)
	filter      func(ident.ProcID) bool
	sink        trace.Sink // nil when tracing is disabled
}

// NewContext builds a context for an external transport (e.g. the TCP
// cluster): submit receives every accepted envelope. The in-memory engine
// builds its contexts internally; most callers never need this.
func NewContext(id ident.ProcID, n, t int, transmitter ident.ProcID, phase, lastPhase int, submit func(Envelope)) *Context {
	return &Context{
		id:          id,
		n:           n,
		t:           t,
		transmitter: transmitter,
		phase:       phase,
		lastPhase:   lastPhase,
		submit:      submit,
	}
}

// WithTrace derives a context that reports suppressed sends (see
// WithSendFilter) to s as KindOmit events. The in-memory engine wires its
// contexts internally; external transports chain this after NewContext.
func (c *Context) WithTrace(s trace.Sink) *Context {
	clone := *c
	clone.sink = s
	return &clone
}

// WithSendFilter derives a context whose Send silently drops messages to
// recipients for which allow returns false. Adversary wrappers use this to
// model a Byzantine processor that runs correct protocol logic but withholds
// messages from part of the system (the proofs of Theorems 1 and 2 both
// need exactly this power).
func (c *Context) WithSendFilter(allow func(ident.ProcID) bool) *Context {
	clone := *c
	prev := c.filter
	clone.filter = func(to ident.ProcID) bool {
		if prev != nil && !prev(to) {
			return false
		}
		return allow(to)
	}
	return &clone
}

// ID returns the identity of the node being stepped.
func (c *Context) ID() ident.ProcID { return c.id }

// N returns the number of processors.
func (c *Context) N() int { return c.n }

// T returns the fault tolerance parameter the protocol was configured for.
func (c *Context) T() int { return c.t }

// Transmitter returns the identity of the transmitter.
func (c *Context) Transmitter() ident.ProcID { return c.transmitter }

// Phase returns the current phase number (1-based).
func (c *Context) Phase() int { return c.phase }

// Send queues a message to `to` for delivery at the start of the next
// phase. Signers/sigTotal describe signatures carried by payload (see
// Envelope). Send fails after the protocol's final phase or for an invalid
// recipient.
func (c *Context) Send(to ident.ProcID, payload []byte, signers []ident.ProcID, sigTotal int) error {
	if c.phase > c.lastPhase {
		return fmt.Errorf("%w: phase %d > %d", ErrSendClosed, c.phase, c.lastPhase)
	}
	if int(to) < 0 || int(to) >= c.n || to == c.id {
		return fmt.Errorf("%w: %v -> %v", ErrBadRecipient, c.id, to)
	}
	if c.filter != nil && !c.filter(to) {
		// An adversary wrapper withheld the send; record the omission so
		// traces can explain why the Byzantine node's traffic is asymmetric.
		if c.sink != nil {
			c.sink.Emit(trace.Event{
				Kind: trace.KindOmit, Phase: c.phase, From: c.id, To: to,
				Sigs: sigTotal, Signers: len(signers), Bytes: len(payload),
			})
		}
		return nil
	}
	c.submit(Envelope{
		From:     c.id,
		To:       to,
		Phase:    c.phase,
		Payload:  payload,
		Signers:  signers,
		SigTotal: sigTotal,
	})
	return nil
}

// Observer is notified of every message accepted by the engine, in
// submission order. The history recorder implements it.
type Observer interface {
	OnSend(e Envelope)
}

// Config parameterizes an engine run.
type Config struct {
	// N is the number of processors; T the tolerated fault bound.
	N, T int
	// Transmitter identifies the processor holding the initial value.
	Transmitter ident.ProcID
	// Phases is the last phase during which messages may be sent. The
	// engine performs one additional delivery-only step so messages from
	// the final phase reach their recipients.
	Phases int
	// Faulty is the set of Byzantine processors (their nodes are supplied
	// by the adversary). May be nil for a fault-free run.
	Faulty ident.Set
	// Rushing grants the adversary the classical "rushing" power: within
	// each phase the correct processors are stepped first and the faulty
	// processors additionally see the messages the correct ones sent *this*
	// phase before choosing their own. Synchronous protocols must tolerate
	// this (the paper's model does not forbid it).
	Rushing bool
	// Observers receive every sent envelope (optional).
	Observers []Observer
	// Trace receives structured execution events (optional). A nil sink
	// disables tracing at the cost of one nil check per potential event;
	// the disabled path allocates nothing.
	Trace trace.Sink
	// Faults is a compiled fault-injection plan (optional). The engine
	// mirrors the TCP transport's frame-layer semantics on its delivery
	// path: per (sending phase, sender, receiver) "frame" — the group of
	// envelopes one sender submitted to one recipient in one phase — the
	// plan may drop, delay, duplicate or reorder the group, and
	// crash-at-phase-k halts a processor (its Step is never called from
	// phase k on). A nil plan injects nothing and costs one nil check per
	// phase.
	Faults *faultnet.Plan
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.N < 1:
		return fmt.Errorf("sim: n=%d < 1", c.N)
	case c.T < 0:
		return fmt.Errorf("sim: t=%d < 0", c.T)
	case c.Phases < 0:
		return fmt.Errorf("sim: phases=%d < 0", c.Phases)
	case int(c.Transmitter) < 0 || int(c.Transmitter) >= c.N:
		return fmt.Errorf("sim: transmitter %v out of range [0,%d)", c.Transmitter, c.N)
	case c.Faulty.Len() > c.T:
		return fmt.Errorf("sim: %d faulty processors exceed t=%d", c.Faulty.Len(), c.T)
	}
	for id := range c.Faulty {
		if int(id) < 0 || int(id) >= c.N {
			return fmt.Errorf("sim: faulty id %v out of range [0,%d)", id, c.N)
		}
	}
	return nil
}

// Decision is a node's final output.
type Decision struct {
	Value   ident.Value
	Decided bool
}

// Result is the outcome of a completed run.
type Result struct {
	// Decisions maps every processor to its decision (including faulty
	// processors, whose outputs are meaningless but sometimes interesting).
	Decisions map[ident.ProcID]Decision
	// Report carries the metrics counters for the run.
	Report metrics.Report
	// Faulty is the faulty set the run was executed with.
	Faulty ident.Set
}

// CorrectDecisions returns the decisions of correct processors, sorted by id.
func (r *Result) CorrectDecisions() []Decision {
	ids := make([]ident.ProcID, 0, len(r.Decisions))
	for id := range r.Decisions {
		if !r.Faulty.Has(id) {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]Decision, len(ids))
	for i, id := range ids {
		out[i] = r.Decisions[id]
	}
	return out
}

// Engine executes one protocol instance to completion.
type Engine struct {
	cfg       Config
	nodes     []Node
	collector *metrics.Collector

	// pending[to] accumulates messages sent during the current phase for
	// delivery at the next one. inboxes holds the deliveries of the current
	// phase; the two swap roles each phase (double-buffer) so slice capacity
	// is recycled instead of regrown.
	pending [][]Envelope
	inboxes [][]Envelope

	// ctxs[id] is processor id's reusable context, re-pointed at the
	// current phase before each Step instead of allocated per step.
	ctxs []Context

	// delayed stashes fault-plan-delayed envelopes: delayed[phase][to] is
	// appended to to's inbox at the start of that phase. Nil unless a
	// fault plan is active.
	delayed map[int]map[int][]Envelope
}

// New builds an engine over the given nodes; nodes[i] is the state machine
// for processor i and must be non-nil.
func New(cfg Config, nodes []Node) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) != cfg.N {
		return nil, fmt.Errorf("sim: %d nodes for n=%d", len(nodes), cfg.N)
	}
	for i, nd := range nodes {
		if nd == nil {
			return nil, fmt.Errorf("sim: nil node for processor %d", i)
		}
	}
	e := &Engine{
		cfg:       cfg,
		nodes:     nodes,
		collector: metrics.NewCollector(cfg.Faulty),
		pending:   make([][]Envelope, cfg.N),
		inboxes:   make([][]Envelope, cfg.N),
		ctxs:      make([]Context, cfg.N),
	}
	submit := e.submit // one bound method value shared by every context
	for i := range e.ctxs {
		e.ctxs[i] = Context{
			id:          ident.ProcID(i),
			n:           cfg.N,
			t:           cfg.T,
			transmitter: cfg.Transmitter,
			lastPhase:   cfg.Phases,
			submit:      submit,
			sink:        cfg.Trace,
		}
	}
	return e, nil
}

func (e *Engine) submit(env Envelope) {
	e.collector.OnSend(env.Phase, env.From, env.SigTotal, len(env.Signers), len(env.Payload))
	for _, o := range e.cfg.Observers {
		o.OnSend(env)
	}
	if e.cfg.Trace != nil {
		e.cfg.Trace.Emit(trace.Event{
			Kind: trace.KindSend, Phase: env.Phase, From: env.From, To: env.To,
			Sigs: env.SigTotal, Signers: len(env.Signers), Bytes: len(env.Payload),
			Flag: e.cfg.Faulty.Has(env.From),
		})
	}
	e.pending[env.To] = append(e.pending[env.To], env)
}

// Run executes phases 1..cfg.Phases plus the final delivery-only step and
// returns the collected decisions and metrics. ctx cancellation aborts
// between phases.
func (e *Engine) Run(ctx context.Context) (*Result, error) {
	for phase := 1; phase <= e.cfg.Phases+1; phase++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: aborted at phase %d: %w", phase, err)
		}
		if e.cfg.Trace != nil {
			e.cfg.Trace.Emit(trace.Event{Kind: trace.KindPhaseStart, Phase: phase, From: ident.None, To: ident.None})
		}
		// Swap pending into inboxes; messages sent this phase accumulate
		// into the recycled slices of the previous phase's inboxes (their
		// contents were delivered last phase and the Node contract forbids
		// retaining the inbox array beyond Step).
		e.inboxes, e.pending = e.pending, e.inboxes
		for to := range e.pending {
			e.pending[to] = e.pending[to][:0]
			sortInbox(e.inboxes[to])
		}
		if e.cfg.Faults != nil {
			e.applyFaults(phase)
		}
		if !e.cfg.Rushing {
			for id := 0; id < e.cfg.N; id++ {
				if e.cfg.Faults.Crashed(ident.ProcID(id), phase) {
					continue
				}
				if err := e.step(id, phase, nil); err != nil {
					return nil, err
				}
			}
		} else {
			// Rushing: correct processors move first; faulty processors
			// then peek at the current phase's correct traffic addressed
			// to them before sending.
			for id := 0; id < e.cfg.N; id++ {
				if !e.cfg.Faulty.Has(ident.ProcID(id)) && !e.cfg.Faults.Crashed(ident.ProcID(id), phase) {
					if err := e.step(id, phase, nil); err != nil {
						return nil, err
					}
				}
			}
			for id := 0; id < e.cfg.N; id++ {
				if e.cfg.Faults.Crashed(ident.ProcID(id), phase) {
					continue
				}
				if e.cfg.Faulty.Has(ident.ProcID(id)) {
					// Deep-clone the peeked envelopes: pending still feeds
					// correct inboxes next phase, and a mutating adversary
					// must not be able to corrupt them through shared
					// Payload/Signers backing arrays.
					peek := make([]Envelope, len(e.pending[id]))
					for i, env := range e.pending[id] {
						peek[i] = env.Clone()
					}
					if e.cfg.Trace != nil && len(peek) > 0 {
						e.cfg.Trace.Emit(trace.Event{
							Kind: trace.KindRush, Phase: phase,
							From: ident.ProcID(id), To: ident.None, Sigs: len(peek),
						})
					}
					if err := e.step(id, phase, peek); err != nil {
						return nil, err
					}
				}
			}
		}
		if e.cfg.Trace != nil {
			e.cfg.Trace.Emit(trace.Event{Kind: trace.KindPhaseEnd, Phase: phase, From: ident.None, To: ident.None})
		}
	}

	res := &Result{
		Decisions: make(map[ident.ProcID]Decision, e.cfg.N),
		Report:    e.collector.Report(),
		Faulty:    e.cfg.Faulty.Clone(),
	}
	for id, nd := range e.nodes {
		v, ok := nd.Decide()
		if e.cfg.Trace != nil {
			e.cfg.Trace.Emit(trace.Event{
				Kind: trace.KindDecide, Phase: e.cfg.Phases + 1,
				From: ident.ProcID(id), To: ident.None, Value: v, Flag: ok,
			})
		}
		res.Decisions[ident.ProcID(id)] = Decision{Value: v, Decided: ok}
	}
	return res, nil
}

// step advances processor id through one phase. extra (rushing only) is
// appended to the delivered inbox without disturbing it.
func (e *Engine) step(id, phase int, extra []Envelope) error {
	nctx := &e.ctxs[id]
	nctx.phase = phase
	inbox := e.inboxes[id]
	if e.cfg.Trace != nil {
		for i := range inbox {
			e.cfg.Trace.Emit(trace.Event{
				Kind: trace.KindDeliver, Phase: phase, From: inbox[i].From, To: inbox[i].To,
				Sigs: inbox[i].SigTotal, Signers: len(inbox[i].Signers), Bytes: len(inbox[i].Payload),
			})
		}
	}
	if len(extra) > 0 {
		inbox = append(append(make([]Envelope, 0, len(inbox)+len(extra)), inbox...), extra...)
	}
	if err := e.nodes[id].Step(nctx, inbox); err != nil {
		return fmt.Errorf("sim: processor %d failed at phase %d: %w", id, phase, err)
	}
	return nil
}

// applyFaults mirrors the TCP transport's frame-layer fault injection on
// the engine's delivery path, once per phase before any node is stepped.
// For every live receiver it walks the senders in identity order, treats
// the sender's contiguous envelope group in the (sorted) inbox as one
// "frame" of sending phase phase-1, and applies the plan's verdict: drop
// discards the group, delay stashes a copy for redelivery Delay phases
// later, dup appends a second copy, reorder reverses the group. Exactly
// one fault-* event is emitted per acted-on frame — also for empty frames,
// matching the transport, which always has a frame on the wire — so trace
// counters equal Plan.ExpectedCounters. Crash halts are announced here
// too; the crashed processor's Step is skipped by the Run loop.
func (e *Engine) applyFaults(phase int) {
	plan := e.cfg.Faults
	for id := 0; id < e.cfg.N; id++ {
		if plan.CrashPhase(ident.ProcID(id)) == phase && e.cfg.Trace != nil {
			e.cfg.Trace.Emit(trace.Event{Kind: trace.KindFaultCrash, Phase: phase, From: ident.ProcID(id), To: ident.None})
		}
	}
	sendPhase := phase - 1
	if sendPhase < 1 {
		return
	}
	for r := 0; r < e.cfg.N; r++ {
		to := ident.ProcID(r)
		if plan.Crashed(to, phase) {
			continue
		}
		in := e.inboxes[r]
		out := make([]Envelope, 0, len(in))
		idx := 0
		changed := false
		for s := 0; s < e.cfg.N; s++ {
			from := ident.ProcID(s)
			start := idx
			for idx < len(in) && in[idx].From == from {
				idx++
			}
			group := in[start:idx]
			if from == to || plan.Crashed(from, sendPhase) {
				out = append(out, group...)
				continue
			}
			act := plan.FrameAction(sendPhase, from, to)
			if act.Kind != faultnet.ActNone && e.cfg.Trace != nil {
				e.cfg.Trace.Emit(trace.Event{
					Kind: faultKind(act.Kind), Phase: sendPhase, From: from, To: to, Sigs: act.Delay,
				})
			}
			switch act.Kind {
			case faultnet.ActDrop:
				changed = true
			case faultnet.ActDelay:
				if len(group) > 0 {
					target := phase + act.Delay
					if e.delayed == nil {
						e.delayed = make(map[int]map[int][]Envelope)
					}
					if e.delayed[target] == nil {
						e.delayed[target] = make(map[int][]Envelope)
					}
					// Copy: the inbox backing array is recycled as next
					// phase's pending buffer (payloads are never recycled,
					// so value copies suffice).
					e.delayed[target][r] = append(e.delayed[target][r], group...)
				}
				changed = true
			case faultnet.ActDup:
				out = append(out, group...)
				out = append(out, group...)
				changed = true
			case faultnet.ActReorder:
				for i := len(group) - 1; i >= 0; i-- {
					out = append(out, group[i])
				}
				changed = true
			default:
				out = append(out, group...)
			}
		}
		// Envelopes past idx (none in practice: From is always in [0,n))
		// are preserved untouched.
		out = append(out, in[idx:]...)
		if late := e.delayed[phase][r]; len(late) > 0 {
			// Redeliver plan-delayed frames after the current content, then
			// restore sender order — the stable sort keeps a sender's
			// current-phase messages ahead of its late ones, matching the
			// transport's merge.
			out = append(out, late...)
			delete(e.delayed[phase], r)
			sortInbox(out)
			changed = true
		}
		if changed {
			e.inboxes[r] = out
		}
	}
}

// faultKind maps a plan action to its trace event kind.
func faultKind(k faultnet.ActionKind) trace.Kind {
	switch k {
	case faultnet.ActDrop:
		return trace.KindFaultDrop
	case faultnet.ActDelay:
		return trace.KindFaultDelay
	case faultnet.ActDup:
		return trace.KindFaultDup
	case faultnet.ActReorder:
		return trace.KindFaultReorder
	}
	return 0
}

// sortInbox orders an inbox by sender id, preserving the submission order of
// messages from the same sender (stable). Nodes are stepped in identity
// order, so inboxes usually arrive already sender-sorted (rushing and
// send-to-self-audience adversaries are the exceptions); an O(len) order
// check skips the sort machinery on that fast path.
func sortInbox(in []Envelope) {
	for i := 1; i < len(in); i++ {
		if in[i].From < in[i-1].From {
			sort.SliceStable(in, func(i, j int) bool { return in[i].From < in[j].From })
			return
		}
	}
}
