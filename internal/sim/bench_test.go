package sim_test

import (
	"context"
	"strconv"
	"testing"

	"byzex/internal/core"
	"byzex/internal/ident"
	"byzex/internal/protocols/dolevstrong"
	"byzex/internal/sim"
	"byzex/internal/trace"
)

// flooder broadcasts a fixed payload every phase — a throughput stress for
// the engine's delivery path.
type flooder struct {
	id      ident.ProcID
	payload []byte
}

func (f *flooder) Step(ctx *sim.Context, _ []sim.Envelope) error {
	if ctx.Phase() > 1 {
		return nil
	}
	for i := 0; i < ctx.N(); i++ {
		to := ident.ProcID(i)
		if to == f.id {
			continue
		}
		if err := ctx.Send(to, f.payload, nil, 0); err != nil {
			return err
		}
	}
	return nil
}

func (f *flooder) Decide() (ident.Value, bool) { return 0, true }

// BenchmarkEngineBroadcast measures raw engine throughput: n² messages per
// run across one phase.
func BenchmarkEngineBroadcast(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(benchName(n), func(b *testing.B) {
			payload := make([]byte, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes := make([]sim.Node, n)
				for j := range nodes {
					nodes[j] = &flooder{id: ident.ProcID(j), payload: payload}
				}
				eng, err := sim.New(sim.Config{N: n, Phases: 1}, nodes)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eng.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n*(n-1)), "msgs/run")
		})
	}
}

// BenchmarkEngineHotPath exercises the full engine fast path end to end: a
// fault-free Dolev-Strong run at n=256 (t=4), the configuration dominated by
// inbox buffering, per-phase context setup and sorted-delivery checks rather
// than by protocol logic.
func BenchmarkEngineHotPath(b *testing.B) {
	const n, t = 256, 4
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(ctx, core.Config{
			Protocol: dolevstrong.Protocol{}, N: n, T: t, Value: ident.V1, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Decision(0, ident.V1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceOverhead quantifies the tracing tax on the broadcast stress:
// "disabled" is the nil-sink fast path (one nil check per potential event,
// zero allocations — the default everyone pays), "nop" adds the interface
// dispatch with a discarding sink, and "ring" adds bounded retention. The
// disabled case must track BenchmarkEngineBroadcast within noise.
func BenchmarkTraceOverhead(b *testing.B) {
	const n = 64
	payload := make([]byte, 64)
	run := func(b *testing.B, sink trace.Sink) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nodes := make([]sim.Node, n)
			for j := range nodes {
				nodes[j] = &flooder{id: ident.ProcID(j), payload: payload}
			}
			eng, err := sim.New(sim.Config{N: n, Phases: 1, Trace: sink}, nodes)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Run(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(n*(n-1)), "msgs/run")
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("nop", func(b *testing.B) { run(b, trace.Nop{}) })
	b.Run("ring", func(b *testing.B) {
		ring := trace.NewRing(4096)
		run(b, ring)
	})
}

func benchName(n int) string {
	return "n=" + strconv.Itoa(n)
}
