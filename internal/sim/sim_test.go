package sim_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"byzex/internal/ident"
	"byzex/internal/sim"
)

// echoNode broadcasts its id at phase 1 and records everything received.
type echoNode struct {
	id       ident.ProcID
	received []sim.Envelope
}

func (e *echoNode) Step(ctx *sim.Context, inbox []sim.Envelope) error {
	e.received = append(e.received, inbox...)
	if ctx.Phase() == 1 {
		for i := 0; i < ctx.N(); i++ {
			to := ident.ProcID(i)
			if to == e.id {
				continue
			}
			if err := ctx.Send(to, []byte{byte(e.id)}, nil, 0); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *echoNode) Decide() (ident.Value, bool) { return ident.Value(e.id), true }

func newEngine(t *testing.T, n, phases int) (*sim.Engine, []*echoNode) {
	t.Helper()
	nodes := make([]sim.Node, n)
	echoes := make([]*echoNode, n)
	for i := range nodes {
		echoes[i] = &echoNode{id: ident.ProcID(i)}
		nodes[i] = echoes[i]
	}
	eng, err := sim.New(sim.Config{N: n, T: 0, Phases: phases}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return eng, echoes
}

func TestDeliveryNextPhase(t *testing.T) {
	eng, echoes := newEngine(t, 3, 1)
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Messages sent at phase 1 arrive at the (delivery-only) step 2.
	for i, e := range echoes {
		if len(e.received) != 2 {
			t.Fatalf("node %d received %d messages, want 2", i, len(e.received))
		}
		for _, env := range e.received {
			if env.Phase != 1 {
				t.Fatalf("node %d got message from phase %d", i, env.Phase)
			}
		}
	}
	if res.Report.MessagesCorrect != 6 {
		t.Fatalf("message count %d, want 6", res.Report.MessagesCorrect)
	}
}

func TestInboxSortedBySender(t *testing.T) {
	eng, echoes := newEngine(t, 5, 1)
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, e := range echoes {
		for i := 1; i < len(e.received); i++ {
			if e.received[i].From < e.received[i-1].From {
				t.Fatal("inbox not sorted by sender")
			}
		}
	}
}

// lateSender tries to send during the delivery-only step.
type lateSender struct {
	errSeen error
}

func (l *lateSender) Step(ctx *sim.Context, _ []sim.Envelope) error {
	if ctx.Phase() == 2 { // one past Phases=1
		l.errSeen = ctx.Send(0, []byte("late"), nil, 0)
	}
	return nil
}

func (l *lateSender) Decide() (ident.Value, bool) { return 0, true }

func TestSendAfterFinalPhaseRejected(t *testing.T) {
	late := &lateSender{}
	eng, err := sim.New(sim.Config{N: 2, T: 0, Phases: 1}, []sim.Node{&echoNode{id: 0}, late})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(late.errSeen, sim.ErrSendClosed) {
		t.Fatalf("late send error = %v, want ErrSendClosed", late.errSeen)
	}
}

// selfSender tries to message itself.
type selfSender struct {
	errSeen error
}

func (s *selfSender) Step(ctx *sim.Context, _ []sim.Envelope) error {
	if ctx.Phase() == 1 {
		s.errSeen = ctx.Send(ctx.ID(), []byte("self"), nil, 0)
	}
	return nil
}

func (s *selfSender) Decide() (ident.Value, bool) { return 0, true }

func TestSelfSendRejected(t *testing.T) {
	self := &selfSender{}
	eng, err := sim.New(sim.Config{N: 2, T: 0, Phases: 1}, []sim.Node{self, &echoNode{id: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(self.errSeen, sim.ErrBadRecipient) {
		t.Fatalf("self send error = %v, want ErrBadRecipient", self.errSeen)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []sim.Config{
		{N: 0, Phases: 1},
		{N: 2, T: -1, Phases: 1},
		{N: 2, T: 0, Phases: -1},
		{N: 2, T: 0, Phases: 1, Transmitter: 5},
		{N: 3, T: 1, Phases: 1, Faulty: ident.NewSet(0, 1)}, // more faulty than t
		{N: 3, T: 3, Phases: 1, Faulty: ident.NewSet(7)},    // out of range
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	good := sim.Config{N: 3, T: 1, Phases: 2, Faulty: ident.NewSet(2)}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestNodeCountMismatch(t *testing.T) {
	if _, err := sim.New(sim.Config{N: 3, Phases: 1}, []sim.Node{&echoNode{}}); err == nil {
		t.Fatal("accepted wrong node count")
	}
	if _, err := sim.New(sim.Config{N: 1, Phases: 1}, []sim.Node{nil}); err == nil {
		t.Fatal("accepted nil node")
	}
}

// failNode errors at a chosen phase.
type failNode struct {
	at int
}

func (f *failNode) Step(ctx *sim.Context, _ []sim.Envelope) error {
	if ctx.Phase() == f.at {
		return fmt.Errorf("deliberate failure")
	}
	return nil
}

func (f *failNode) Decide() (ident.Value, bool) { return 0, false }

func TestNodeErrorAborts(t *testing.T) {
	eng, err := sim.New(sim.Config{N: 2, Phases: 3}, []sim.Node{&failNode{at: 2}, &echoNode{id: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err == nil {
		t.Fatal("node error not propagated")
	}
}

func TestContextCancellation(t *testing.T) {
	eng, _ := newEngine(t, 2, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSendFilterDropsSilently(t *testing.T) {
	filtered := &filterNode{}
	sink := &echoNode{id: 1}
	eng, err := sim.New(sim.Config{N: 3, Phases: 1}, []sim.Node{filtered, sink, &echoNode{id: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, env := range sink.received {
		if env.From == 0 {
			t.Fatal("filtered send reached recipient")
		}
	}
}

type filterNode struct{}

func (f *filterNode) Step(ctx *sim.Context, _ []sim.Envelope) error {
	if ctx.Phase() != 1 {
		return nil
	}
	fctx := ctx.WithSendFilter(func(to ident.ProcID) bool { return to != 1 })
	if err := fctx.Send(1, []byte("dropped"), nil, 0); err != nil {
		return err
	}
	return fctx.Send(2, []byte("kept"), nil, 0)
}

func (f *filterNode) Decide() (ident.Value, bool) { return 0, true }

func TestFaultyMetricsSplit(t *testing.T) {
	nodes := []sim.Node{&echoNode{id: 0}, &echoNode{id: 1}, &echoNode{id: 2}}
	eng, err := sim.New(sim.Config{N: 3, T: 1, Phases: 1, Faulty: ident.NewSet(2)}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MessagesCorrect != 4 || res.Report.MessagesFaulty != 2 {
		t.Fatalf("split %d/%d, want 4/2", res.Report.MessagesCorrect, res.Report.MessagesFaulty)
	}
	if len(res.CorrectDecisions()) != 2 {
		t.Fatalf("correct decisions %d, want 2", len(res.CorrectDecisions()))
	}
}

func TestEnvelopeClone(t *testing.T) {
	orig := sim.Envelope{From: 1, To: 2, Phase: 3, Payload: []byte{1, 2}, Signers: []ident.ProcID{1}, SigTotal: 1}
	cl := orig.Clone()
	cl.Payload[0] = 9
	cl.Signers[0] = 9
	if orig.Payload[0] == 9 || orig.Signers[0] == 9 {
		t.Fatal("clone shares storage")
	}
}
